"""Determinism guarantees of checkpointed campaign execution.

The checkpoint/restore layer promises that resumed runs are
*byte-for-byte identical* to full re-runs: every trace sample, final
signal value and telemetry float.  These tests assert that promise for

* raw runtime checkpoints on the toy chain, the closed-loop arrestment
  system and the two-node configuration (both of which contain feedback
  loops: CLOCK's ``ms_slot_nbr`` and CALC's ``i``);
* whole campaigns across the serial naive, serial checkpointed and
  grid-sharded parallel execution paths, including the full injected
  trace sets via the inspector hook;
* stateful-module snapshot/restore round trips (property-based).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrestment import build_arrestment_run
from repro.arrestment.dist_s import DistanceSensorModule
from repro.arrestment.pres_s import PressureSensorModule
from repro.arrestment.testcases import ArrestmentTestCase
from repro.arrestment.twonode import build_twonode_run
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip, RandomBitFlip
from repro.injection.traps import InputInjectionTrap
from repro.model.errors import CampaignError, SimulationError
from repro.simulation.snapshot import Snapshotable, restore_state, snapshot_state

from tests.conftest import build_toy_model, build_toy_run, toy_factory


def assert_identical_results(a, b) -> None:
    """Byte-for-byte equality of two RunResults."""
    assert a.duration_ms == b.duration_ms
    assert a.traces.to_mapping() == b.traces.to_mapping()
    assert a.final_signals == b.final_signals
    assert a.telemetry == b.telemetry


# ---------------------------------------------------------------------------
# Runtime checkpoint/restore
# ---------------------------------------------------------------------------


class TestRuntimeCheckpoints:
    DURATION = 300
    TIMES = (0, 40, 133)

    @pytest.mark.parametrize(
        "build",
        [build_toy_run, build_arrestment_run, build_twonode_run],
        ids=["toy", "arrestment", "twonode"],
    )
    def test_resumed_runs_bit_identical(self, build):
        runner = build()
        full = runner.run(self.DURATION)
        traced, checkpoints = runner.run_with_checkpoints(
            self.DURATION, self.TIMES
        )
        assert_identical_results(traced, full)
        assert sorted(checkpoints) == sorted(self.TIMES)
        for time_ms, checkpoint in checkpoints.items():
            assert checkpoint.time_ms == time_ms
            resumed = runner.run_from(checkpoint, self.DURATION)
            assert_identical_results(resumed, full)

    def test_checkpoint_survives_multiple_restores(self):
        """The same checkpoint restores identically any number of times."""
        runner = build_arrestment_run()
        full = runner.run(self.DURATION)
        _, checkpoints = runner.run_with_checkpoints(self.DURATION, [100])
        checkpoint = checkpoints[100]
        for _ in range(3):
            assert_identical_results(runner.run_from(checkpoint, self.DURATION), full)

    def test_injected_suffix_matches_full_injected_run(self):
        """An IR resumed from a checkpoint equals the full IR, trap and all."""
        runner = build_arrestment_run()
        _, checkpoints = runner.run_with_checkpoints(self.DURATION, [100])

        def trap():
            return InputInjectionTrap.for_system(
                runner.system, "V_REG", "SetValue", 100, BitFlip(14)
            )

        full_trap = trap()
        runner.add_read_interceptor(full_trap)
        full = runner.run(self.DURATION)
        runner.clear_hooks()

        resumed_trap = trap()
        runner.add_read_interceptor(resumed_trap)
        resumed = runner.run_from(checkpoints[100], self.DURATION)
        runner.clear_hooks()

        assert_identical_results(resumed, full)
        assert resumed_trap.fired_at_ms == full_trap.fired_at_ms
        assert resumed_trap.injected_value == full_trap.injected_value

    def test_checkpoints_picklable(self):
        """Checkpoints ship across process boundaries for grid sharding."""
        import pickle

        runner = build_arrestment_run()
        full = runner.run(self.DURATION)
        _, checkpoints = runner.run_with_checkpoints(self.DURATION, [100])
        revived = pickle.loads(pickle.dumps(checkpoints[100]))
        assert_identical_results(runner.run_from(revived, self.DURATION), full)

    def test_run_from_rejects_past_duration(self):
        runner = build_toy_run()
        _, checkpoints = runner.run_with_checkpoints(50, [30])
        with pytest.raises(SimulationError):
            runner.run_from(checkpoints[30], 30)

    def test_checkpoint_times_validated(self):
        runner = build_toy_run()
        with pytest.raises(SimulationError):
            runner.run_with_checkpoints(50, [50])
        with pytest.raises(SimulationError):
            runner.run_with_checkpoints(50, [-1])

    def test_foreign_checkpoint_rejected(self):
        """A checkpoint from a different system does not restore."""
        toy = build_toy_run()
        _, checkpoints = toy.run_with_checkpoints(50, [10])
        arrestment = build_arrestment_run()
        with pytest.raises(SimulationError):
            arrestment.restore(checkpoints[10])

    def test_hooks_installed_property(self):
        runner = build_toy_run()
        assert not runner.hooks_installed
        runner.add_read_interceptor(
            InputInjectionTrap.for_system(
                runner.system, "FILT", "src", 5, BitFlip(3)
            )
        )
        assert runner.hooks_installed
        runner.clear_hooks()
        assert not runner.hooks_installed


# ---------------------------------------------------------------------------
# Campaign-level equivalence: naive / checkpointed / grid-sharded
# ---------------------------------------------------------------------------


def outcome_records(result):
    return [
        (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
         o.error_model, o.fired_at_ms, o.comparison.first_divergence_ms)
        for o in result
    ]


class TestCampaignEquivalence:
    def toy_campaign(self, reuse: bool) -> InjectionCampaign:
        return InjectionCampaign(
            build_toy_model(),
            toy_factory,
            {"a": None, "b": None},
            CampaignConfig(
                duration_ms=40,
                injection_times_ms=(5, 21),
                error_models=(BitFlip(15), BitFlip(2), RandomBitFlip()),
                seed=11,
                reuse_golden_prefix=reuse,
            ),
        )

    def arrestment_campaign(self, reuse: bool) -> InjectionCampaign:
        # Feedback-loop coverage: CLOCK reads its own slot counter and
        # CALC's checkpoint index i is both input and output.
        return InjectionCampaign(
            build_arrestment_run(ArrestmentTestCase(14000, 60)).system,
            build_arrestment_run,
            {"nominal": ArrestmentTestCase(14000, 60)},
            CampaignConfig(
                duration_ms=250,
                injection_times_ms=(40, 170),
                error_models=(BitFlip(14), BitFlip(0)),
                targets=(
                    ("CLOCK", "ms_slot_nbr"),
                    ("CALC", "i"),
                    ("V_REG", "SetValue"),
                ),
                seed=5,
                reuse_golden_prefix=reuse,
            ),
        )

    @pytest.mark.parametrize("make", ["toy_campaign", "arrestment_campaign"])
    def test_checkpointed_identical_to_naive(self, make):
        build = getattr(self, make)
        naive_traces, ckpt_traces = [], []
        naive = build(False).execute(
            inspector=lambda o, ir, g: naive_traces.append(ir.traces.to_mapping())
        )
        checkpointed = build(True).execute(
            inspector=lambda o, ir, g: ckpt_traces.append(ir.traces.to_mapping())
        )
        assert outcome_records(checkpointed) == outcome_records(naive)
        # Full injected trace sets, not just the GRC verdicts.
        assert ckpt_traces == naive_traces

    @pytest.mark.parametrize("make", ["toy_campaign", "arrestment_campaign"])
    def test_grid_sharded_identical_to_naive(self, make):
        build = getattr(self, make)
        naive = build(False).execute()
        sharded = build(True).execute_parallel(max_workers=2, chunk_size=1)
        assert outcome_records(sharded) == outcome_records(naive)

    def test_dirty_runtime_rejected(self):
        """The campaign refuses to arm a trap on a runtime with leaked hooks."""
        campaign = self.toy_campaign(True)
        runner = build_toy_run()
        runner.add_read_interceptor(
            InputInjectionTrap.for_system(
                runner.system, "FILT", "src", 5, BitFlip(3)
            )
        )
        golden_runner, golden, checkpoints = campaign._golden_for_case("a", None)
        with pytest.raises(CampaignError):
            campaign._one_injection(
                runner, golden, "a", "FILT", "src", 5, BitFlip(3)
            )

    def test_skipped_ms_accounting(self):
        campaign = self.toy_campaign(True)
        # 2 cases x 2 targets x 3 models x (5 + 21) skipped ms.
        assert campaign.simulated_ms_skipped() == 2 * 2 * 3 * 26
        assert campaign.simulated_ms_total() == campaign.total_runs() * 40
        assert self.toy_campaign(False).simulated_ms_skipped() == 0


# ---------------------------------------------------------------------------
# Stateful-module snapshot round trips (property-based)
# ---------------------------------------------------------------------------


samples16 = st.integers(min_value=0, max_value=0xFFFF)


class TestSnapshotRoundTrip:
    @given(st.lists(samples16, min_size=1, max_size=40),
           st.lists(samples16, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_pres_s_restore_resumes_identically(self, warmup, tail):
        """snapshot → diverge → restore → replay gives identical outputs."""
        module = PressureSensorModule()
        module.reset()
        for t, sample in enumerate(warmup):
            module.activate({"ADC": sample}, t)
        state = snapshot_state(module)

        reference = [
            module.activate({"ADC": sample}, len(warmup) + t)
            for t, sample in enumerate(tail)
        ]
        # Diverge arbitrarily, then rewind.
        module.activate({"ADC": 0xDEAD & 0xFFFF}, 999)
        restore_state(module, state)
        replayed = [
            module.activate({"ADC": sample}, len(warmup) + t)
            for t, sample in enumerate(tail)
        ]
        assert replayed == reference

    @given(st.lists(st.tuples(samples16, samples16, samples16),
                    min_size=1, max_size=40),
           st.lists(st.tuples(samples16, samples16, samples16),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_dist_s_restore_resumes_identically(self, warmup, tail):
        module = DistanceSensorModule()
        module.reset()

        def feed(rows, offset):
            return [
                module.activate(
                    {"PACNT": p, "TIC1": c, "TCNT": t}, offset + index
                )
                for index, (p, c, t) in enumerate(rows)
            ]

        feed(warmup, 0)
        state = snapshot_state(module)
        reference = feed(tail, len(warmup))
        feed([(1, 2, 3)] * 5, 900)  # diverge
        restore_state(module, state)
        assert feed(tail, len(warmup)) == reference

    def test_arrestment_modules_are_snapshotable(self):
        """Every module of both configurations implements the protocol."""
        from repro.arrestment.system import build_arrestment_modules
        from repro.arrestment.twonode import build_twonode_modules

        for module in build_arrestment_modules() + build_twonode_modules():
            assert isinstance(module, Snapshotable), module.name
            state = module.state_dict()
            module.load_state_dict(state)

    def test_deepcopy_fallback_round_trip(self):
        """Objects without the protocol go through the deepcopy fallback."""

        class Plain:
            def __init__(self) -> None:
                self.history = [1, 2]
                self.value = 7

        obj = Plain()
        state = snapshot_state(obj)
        obj.history.append(3)
        obj.value = 0
        restore_state(obj, state)
        assert obj.history == [1, 2] and obj.value == 7
        # The snapshot must not alias restored containers.
        obj.history.append(9)
        restore_state(obj, state)
        assert obj.history == [1, 2]
