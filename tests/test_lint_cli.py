"""CLI tests for ``repro lint`` and the campaign ``--no-lint`` flag."""

from __future__ import annotations

import json

from repro.cli import build_parser, main
from repro.lint import validate_sarif


class TestLintParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.system == "arrestment"
        assert args.format == "text"
        assert args.fail_on == "error"
        assert args.select is None and args.ignore is None

    def test_campaign_no_lint_flag(self):
        args = build_parser().parse_args(["campaign", "--no-lint"])
        assert args.no_lint is True
        args = build_parser().parse_args(["campaign"])
        assert args.no_lint is False


class TestLintExecution:
    def test_text_format_clean_arrestment(self, capsys):
        assert main(["lint"]) == 0
        output = capsys.readouterr().out
        assert "clean: no findings" in output
        assert "0 error(s)" in output

    def test_json_format(self, capsys):
        assert main(["lint", "--system", "fig2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "fig2-example"
        assert payload["summary"]["errors"] == 0

    def test_sarif_format_validates(self, capsys):
        assert main(["lint", "--system", "fig2", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        validate_sarif(log)

    def test_fail_on_warning_with_paper_matrix(self, capsys):
        # Fig. 2 ships one all-zero permeability pair -> an R009 warning.
        code = main(
            ["lint", "--system", "fig2", "--paper-matrix", "--fail-on", "warning"]
        )
        assert code == 1
        assert "R009" in capsys.readouterr().out

    def test_ignore_suppresses_individual_codes(self, capsys):
        code = main(
            [
                "lint",
                "--system",
                "fig2",
                "--paper-matrix",
                "--ignore",
                "R009,R010",
                "--fail-on",
                "warning",
            ]
        )
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_select_keeps_only_chosen_codes(self, capsys):
        code = main(
            ["lint", "--system", "fig2", "--paper-matrix", "--select", "R001"]
        )
        assert code == 0
        assert "R009" not in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "lint.sarif"
        code = main(
            [
                "lint",
                "--system",
                "arrestment",
                "--format",
                "sarif",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        assert str(target) in capsys.readouterr().out
        validate_sarif(json.loads(target.read_text(encoding="utf-8")))

    def test_paper_matrix_requires_fig2(self, capsys):
        assert main(["lint", "--paper-matrix"]) == 2
        assert "--system fig2" in capsys.readouterr().err

    def test_twonode_system_lints(self, capsys):
        assert main(["lint", "--system", "twonode"]) == 0

    def test_saved_matrix_roundtrip(self, tmp_path, capsys):
        from repro.arrestment.system import build_arrestment_model
        from repro.core.permeability import PermeabilityMatrix

        system = build_arrestment_model()
        matrix = PermeabilityMatrix.uniform(system, 0.5)
        path = tmp_path / "matrix.json"
        path.write_text(matrix.to_json(), encoding="utf-8")
        assert main(["lint", "--matrix", str(path)]) == 0
        assert "clean" in capsys.readouterr().out
