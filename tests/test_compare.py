"""Tests for the matrix-comparison utilities."""

from __future__ import annotations

import pytest

from repro.core.compare import (
    compare_matrices,
    spearman_rank_correlation,
)
from repro.core.permeability import PermeabilityMatrix
from repro.model.builder import SystemBuilder
from repro.model.examples import build_fig2_system, fig2_permeabilities


class TestSpearman:
    def test_identical_orderings(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_reversed_orderings(self):
        assert spearman_rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_classic_example(self):
        # Hand-computed rho for a small permutation.
        a = [1, 2, 3, 4, 5]
        b = [2, 1, 4, 3, 5]
        # d = (1,1,1,1,0); rho = 1 - 6*4/(5*24) = 0.8
        assert spearman_rank_correlation(a, b) == pytest.approx(0.8)

    def test_ties_handled(self):
        rho = spearman_rank_correlation([1, 1, 2], [1, 1, 2])
        assert rho == pytest.approx(1.0)

    def test_constant_input_is_degenerate_one(self):
        assert spearman_rank_correlation([5, 5, 5], [1, 2, 3]) == 1.0

    def test_single_element(self):
        assert spearman_rank_correlation([1], [9]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1, 2])


class TestCompareMatrices:
    def test_identical_matrices(self, fig2_matrix):
        system = build_fig2_system()
        other = PermeabilityMatrix.from_dict(system, fig2_permeabilities())
        comparison = compare_matrices(fig2_matrix, other)
        assert comparison.max_abs_delta == 0.0
        assert comparison.mean_abs_delta == 0.0
        assert comparison.module_rank_correlation == pytest.approx(1.0)
        assert comparison.ordering_maintained
        assert comparison.drifted_pairs() == []

    def test_detects_drift(self, fig2_matrix):
        values = fig2_permeabilities()
        values[("C", "ext_c", "c1")] = 0.5  # was 1.0
        other = PermeabilityMatrix.from_dict(build_fig2_system(), values)
        comparison = compare_matrices(fig2_matrix, other)
        assert comparison.max_abs_delta == pytest.approx(0.5)
        drifted = comparison.drifted_pairs(threshold=0.1)
        assert drifted[0][0] == ("C", "ext_c", "c1")

    def test_ordering_break_detected(self, fig2_matrix):
        # Invert the extremes: make A's single pair huge and B tiny.
        values = {
            key: (0.01 if key[0] == "B" else value)
            for key, value in fig2_permeabilities().items()
        }
        values[("A", "ext_a", "a1")] = 1.0
        other = PermeabilityMatrix.from_dict(build_fig2_system(), values)
        comparison = compare_matrices(fig2_matrix, other)
        assert comparison.module_rank_correlation < 1.0

    def test_different_systems_rejected(self, fig2_matrix):
        builder = SystemBuilder("other")
        builder.add_module("Z", inputs=["x"], outputs=["y"])
        builder.mark_system_input("x")
        builder.mark_system_output("y")
        other = PermeabilityMatrix.uniform(builder.build(), 1.0)
        with pytest.raises(ValueError):
            compare_matrices(fig2_matrix, other)

    def test_incomplete_rejected(self, fig2_matrix, fig2_system):
        with pytest.raises(Exception):
            compare_matrices(fig2_matrix, PermeabilityMatrix(fig2_system))

    def test_render(self, fig2_matrix):
        values = fig2_permeabilities()
        values[("D", "b1", "d1")] = 0.9  # was 0.4
        other = PermeabilityMatrix.from_dict(build_fig2_system(), values)
        text = compare_matrices(fig2_matrix, other).render()
        assert "D: b1 -> d1" in text
        assert "rho" in text
