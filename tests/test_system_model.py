"""Unit tests for :mod:`repro.model.system` and the builder."""

from __future__ import annotations

import pytest

from repro.model.builder import SystemBuilder
from repro.model.errors import (
    DuplicateNameError,
    DuplicateProducerError,
    UnknownModuleError,
    UnknownSignalError,
    ValidationError,
)
from repro.model.module import ModuleSpec
from repro.model.signal import SignalKind
from repro.model.system import SystemModel


def simple_chain() -> SystemModel:
    builder = SystemBuilder("chain")
    builder.add_module("A", inputs=["x"], outputs=["y"])
    builder.add_module("B", inputs=["y"], outputs=["z"])
    builder.mark_system_input("x")
    builder.mark_system_output("z")
    return builder.build()


class TestConstruction:
    def test_basic_queries(self):
        system = simple_chain()
        assert system.module_names() == ("A", "B")
        assert set(system.signal_names()) == {"x", "y", "z"}
        assert system.system_inputs == ("x",)
        assert system.system_outputs == ("z",)

    def test_auto_declared_signals_have_defaults(self):
        system = simple_chain()
        assert system.signal("y").width == 16

    def test_explicit_signal_spec_kept(self):
        builder = SystemBuilder("s")
        builder.add_signal("y", width=8, kind=SignalKind.BOOLEAN)
        builder.add_module("A", inputs=["x"], outputs=["y"])
        builder.mark_system_input("x")
        builder.mark_system_output("y")
        system = builder.build()
        assert system.signal("y").width == 8
        assert system.signal("y").kind is SignalKind.BOOLEAN

    def test_duplicate_module_rejected(self):
        builder = SystemBuilder("s")
        builder.add_module("A", inputs=["x"], outputs=["y"])
        with pytest.raises(DuplicateNameError):
            builder.add_module("A", inputs=["p"], outputs=["q"])

    def test_duplicate_signal_rejected(self):
        builder = SystemBuilder("s")
        builder.add_signal("x")
        with pytest.raises(DuplicateNameError):
            builder.add_signal("x")

    def test_duplicate_producer_rejected(self):
        with pytest.raises(DuplicateProducerError):
            SystemModel(
                "bad",
                modules=[
                    ModuleSpec("A", ("x",), ("y",)),
                    ModuleSpec("B", ("x",), ("y",)),
                ],
                system_inputs=["x"],
                system_outputs=["y"],
            )

    def test_unknown_module_lookup(self):
        with pytest.raises(UnknownModuleError):
            simple_chain().module("NOPE")

    def test_unknown_signal_lookup(self):
        with pytest.raises(UnknownSignalError):
            simple_chain().signal("nope")


class TestValidation:
    def test_unproduced_signal_must_be_system_input(self):
        with pytest.raises(ValidationError) as excinfo:
            SystemModel(
                "bad",
                modules=[ModuleSpec("A", ("x",), ("y",))],
                system_inputs=[],
                system_outputs=["y"],
            )
        assert "x" in str(excinfo.value)

    def test_unconsumed_signal_must_be_system_output(self):
        with pytest.raises(ValidationError):
            SystemModel(
                "bad",
                modules=[ModuleSpec("A", ("x",), ("y",))],
                system_inputs=["x"],
                system_outputs=[],
            )

    def test_system_input_cannot_be_produced_internally(self):
        with pytest.raises(ValidationError):
            SystemModel(
                "bad",
                modules=[
                    ModuleSpec("A", ("x",), ("y",)),
                    ModuleSpec("B", ("y",), ("z",)),
                ],
                system_inputs=["x", "y"],
                system_outputs=["z"],
            )

    def test_system_output_needs_producer(self):
        with pytest.raises(ValidationError):
            SystemModel(
                "bad",
                modules=[ModuleSpec("A", ("x",), ("y",))],
                system_inputs=["x"],
                system_outputs=["y", "ghost"],
            )

    def test_unknown_system_input_rejected(self):
        with pytest.raises(ValidationError):
            SystemModel(
                "bad",
                modules=[ModuleSpec("A", ("x",), ("y",))],
                system_inputs=["x", "phantom"],
                system_outputs=["y"],
            )


class TestTopologyQueries:
    def test_producer_of(self):
        system = simple_chain()
        producer = system.producer_of("y")
        assert producer is not None
        assert producer.module == "A"
        assert producer.index == 1

    def test_producer_of_system_input_is_none(self):
        assert simple_chain().producer_of("x") is None

    def test_consumers_of(self):
        system = simple_chain()
        consumers = system.consumers_of("y")
        assert len(consumers) == 1
        assert consumers[0].module == "B"

    def test_is_system_boundary(self):
        system = simple_chain()
        assert system.is_system_input("x")
        assert not system.is_system_input("y")
        assert system.is_system_output("z")
        assert not system.is_system_output("x")

    def test_connections(self):
        system = simple_chain()
        connections = list(system.connections())
        assert len(connections) == 1
        assert connections[0].signal == "y"
        assert not connections[0].is_feedback

    def test_external_links(self):
        system = simple_chain()
        inputs = list(system.external_input_links())
        outputs = list(system.external_output_links())
        assert [link.signal for link in inputs] == ["x"]
        assert [link.signal for link in outputs] == ["z"]

    def test_feedback_connection_flag(self):
        builder = SystemBuilder("fb")
        builder.add_module("M", inputs=["loop", "x"], outputs=["loop", "y"])
        builder.mark_system_input("x")
        builder.mark_system_output("y")
        system = builder.build()
        feedback = [c for c in system.connections() if c.is_feedback]
        assert len(feedback) == 1
        assert feedback[0].signal == "loop"
        assert system.feedback_modules() == ("M",)

    def test_n_pairs(self):
        assert simple_chain().n_pairs() == 2

    def test_pair_index_order(self):
        system = simple_chain()
        assert list(system.pair_index()) == [("A", "x", "y"), ("B", "y", "z")]

    def test_summary_mentions_everything(self):
        text = simple_chain().summary()
        assert "chain" in text
        assert "A" in text and "B" in text
        assert "system inputs : x" in text


class TestFanout:
    def test_signal_with_two_consumers(self):
        builder = SystemBuilder("fan")
        builder.add_module("SRC", inputs=["ext"], outputs=["s"])
        builder.add_module("L", inputs=["s"], outputs=["lo"])
        builder.add_module("R", inputs=["s"], outputs=["ro"])
        builder.mark_system_input("ext")
        builder.mark_system_output("lo", "ro")
        system = builder.build()
        assert len(system.consumers_of("s")) == 2
        assert len(list(system.connections())) == 2


class TestDeferredValidation:
    def _broken_builder(self) -> SystemBuilder:
        builder = SystemBuilder("broken")
        builder.add_module("M", inputs=["ext"], outputs=["used", "orphan"])
        builder.add_module("N", inputs=["used", "ghost"], outputs=["out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        return builder

    def test_build_validate_false_defers_checks(self):
        system = self._broken_builder().build(validate=False)
        assert isinstance(system, SystemModel)
        with pytest.raises(ValidationError):
            system.validate()

    def test_validation_problems_lists_everything(self):
        system = self._broken_builder().build(validate=False)
        problems = " | ".join(system.validation_problems())
        assert "'orphan'" in problems
        assert "'ghost'" in problems

    def test_valid_system_has_no_problems(self):
        system = simple_chain()
        assert system.validation_problems() == []
        system.validate()  # must not raise

    def test_duplicate_producer_still_raises_unvalidated(self):
        builder = SystemBuilder("dup")
        builder.add_module("A", inputs=["ext"], outputs=["s"])
        builder.add_module("B", inputs=["ext"], outputs=["s"])
        builder.mark_system_input("ext")
        builder.mark_system_output("s")
        with pytest.raises(DuplicateProducerError):
            builder.build(validate=False)


class TestDidYouMeanSuggestions:
    def test_unknown_signal_suggests_nearest(self):
        system = simple_chain()
        with pytest.raises(UnknownSignalError, match="did you mean 'y'"):
            system.signal("yy")

    def test_unknown_module_suggests_nearest(self):
        builder = SystemBuilder("s")
        builder.add_module("FILTER", inputs=["ext"], outputs=["out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        system = builder.build()
        with pytest.raises(UnknownModuleError, match="did you mean 'FILTER'"):
            system.module("FLITER")

    def test_suggestion_records_attributes(self):
        system = simple_chain()
        with pytest.raises(UnknownSignalError) as excinfo:
            system.producer_of("xx")
        assert excinfo.value.name == "xx"
        assert excinfo.value.suggestion == "x"

    def test_no_suggestion_for_distant_names(self):
        system = simple_chain()
        with pytest.raises(UnknownSignalError) as excinfo:
            system.signal("completely_unrelated")
        assert excinfo.value.suggestion is None
        assert "did you mean" not in str(excinfo.value)

    def test_module_port_lookup_names_the_context(self):
        spec = ModuleSpec(name="CALC", inputs=("i", "mscnt"), outputs=("o",))
        with pytest.raises(UnknownSignalError, match="inputs of module 'CALC'"):
            spec.input_index("mscnr")
        with pytest.raises(UnknownSignalError, match="did you mean 'mscnt'"):
            spec.input_index("mscnr")
