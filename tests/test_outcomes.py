"""Unit tests for outcome records and the direct-error rule (§7.3)."""

from __future__ import annotations

from repro.injection.golden_run import GoldenRunComparison
from repro.injection.outcomes import CampaignResult, InjectionOutcome, PairCounts

from tests.conftest import build_toy_model


def make_outcome(
    divergences: dict[str, int | None],
    module: str = "AMP",
    input_signal: str = "filt",
    fired_at: int | None = 5,
) -> InjectionOutcome:
    return InjectionOutcome(
        case_id="case0",
        module=module,
        input_signal=input_signal,
        scheduled_time_ms=5,
        fired_at_ms=fired_at,
        error_model="bitflip[0]",
        comparison=GoldenRunComparison("case0", dict(divergences)),
    )


class TestInjectionOutcome:
    def test_fired_property(self):
        assert make_outcome({"out": None, "filt": None}).fired
        assert not make_outcome({"out": None, "filt": None}, fired_at=None).fired

    def test_output_diverged(self):
        outcome = make_outcome({"out": 9, "filt": None})
        assert outcome.output_diverged("out")
        assert not outcome.output_diverged("filt")

    def test_direct_error_no_loop(self):
        """If the injected input's stored trace never diverges, any
        output divergence is direct."""
        outcome = make_outcome({"out": 9, "filt": None})
        assert outcome.direct_output_error("out")

    def test_direct_error_before_loop_return(self):
        """Output diverging no later than the loop return is direct."""
        outcome = make_outcome({"out": 7, "filt": 9})
        assert outcome.direct_output_error("out")

    def test_indirect_error_after_loop_return(self):
        """Output diverging only after the error returned to the
        injected input is excluded (the paper's rule)."""
        outcome = make_outcome({"out": 12, "filt": 9})
        assert not outcome.direct_output_error("out")

    def test_no_divergence_is_not_direct(self):
        outcome = make_outcome({"out": None, "filt": None})
        assert not outcome.direct_output_error("out")

    def test_tie_counts_as_direct(self):
        outcome = make_outcome({"out": 9, "filt": 9})
        assert outcome.direct_output_error("out")


class TestPairCounts:
    def test_permeability_ratio(self):
        counts = PairCounts("M", "a", "b", n_injections=8, n_errors=2)
        assert counts.permeability == 0.25

    def test_zero_injections(self):
        assert PairCounts("M", "a", "b").permeability == 0.0


class TestCampaignResult:
    def make_result(self) -> CampaignResult:
        result = CampaignResult(build_toy_model())
        result.add(make_outcome({"out": 6, "filt": None}))
        result.add(make_outcome({"out": None, "filt": None}))
        result.add(make_outcome({"out": 12, "filt": 9}))  # indirect
        result.add(
            make_outcome(
                {"out": None, "filt": 5, "src": None},
                module="FILT",
                input_signal="src",
            )
        )
        return result

    def test_len_and_iteration(self):
        result = self.make_result()
        assert len(result) == 4
        assert len(list(result)) == 4

    def test_outcomes_for(self):
        result = self.make_result()
        assert len(result.outcomes_for("AMP")) == 3
        assert len(result.outcomes_for("AMP", "filt")) == 3
        assert len(result.outcomes_for("FILT")) == 1

    def test_pair_counts_direct(self):
        counts = self.make_result().pair_counts(direct_only=True)
        amp = counts[("AMP", "filt", "out")]
        assert amp.n_injections == 3
        assert amp.n_errors == 1  # the indirect one is excluded

    def test_pair_counts_total(self):
        counts = self.make_result().pair_counts(direct_only=False)
        amp = counts[("AMP", "filt", "out")]
        assert amp.n_errors == 2

    def test_pair_counts_cover_all_outputs_of_injected_inputs(self):
        counts = self.make_result().pair_counts()
        assert ("FILT", "src", "filt") in counts
        assert ("AMP", "filt", "out") in counts

    def test_unfired_counts_in_denominator_by_default(self):
        result = CampaignResult(build_toy_model())
        result.add(make_outcome({"out": None, "filt": None}, fired_at=None))
        counts = result.pair_counts()
        assert counts[("AMP", "filt", "out")].n_injections == 1
        skipped = result.pair_counts(count_unfired=False)
        assert skipped[("AMP", "filt", "out")].n_injections == 0

    def test_predicate(self):
        result = self.make_result()
        counts = result.pair_counts(predicate=lambda o: o.module == "FILT")
        assert counts[("AMP", "filt", "out")].n_injections == 0
        assert counts[("FILT", "src", "filt")].n_injections == 1

    def test_n_fired(self):
        result = self.make_result()
        result.add(make_outcome({"out": None, "filt": None}, fired_at=None))
        assert result.n_fired() == 4

    def test_metadata_queries(self):
        result = self.make_result()
        assert result.case_ids() == ("case0",)
        assert result.error_model_names() == ("bitflip[0]",)
