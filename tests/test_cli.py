"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.cases == 2
        assert args.bits == 16
        assert args.seed == 2001

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--mass", "9000", "--velocity", "45"]
        )
        assert args.mass == 9000.0
        assert args.velocity == 45.0


class TestDemo:
    def test_demo_prints_all_tables(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        for marker in ("Table 1.", "Table 2.", "Table 3.", "Table 4.",
                       "Placement recommendations", "sys_out", "ext_a"):
            assert marker in output


class TestSimulate:
    def test_simulate_reports_telemetry(self, capsys):
        assert main(["simulate", "--duration", "500"]) == 0
        output = capsys.readouterr().out
        assert "position_m" in output
        assert "TOC2" in output


class TestCampaignAndAnalyze:
    @pytest.mark.slow
    def test_campaign_save_and_reanalyze(self, tmp_path, capsys):
        matrix_file = tmp_path / "matrix.json"
        code = main(
            [
                "campaign",
                "--cases", "1",
                "--times", "1",
                "--bits", "2",
                "--duration", "5600",
                "--save", str(matrix_file),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1." in output
        assert "Propagation latency" in output
        assert "Greedy EDM subset selection" in output

        data = json.loads(matrix_file.read_text())
        assert len(data["entries"]) == 25

        assert main(["analyze", str(matrix_file)]) == 0
        assert "Table 2." in capsys.readouterr().out


class TestWorkersFlag:
    def test_workers_flag(self):
        args = build_parser().parse_args(["campaign", "--workers", "4"])
        assert args.workers == 4
        assert args.parallel is None

    def test_parallel_alias_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="--parallel is deprecated"):
            args = build_parser().parse_args(["campaign", "--parallel", "4"])
        assert args.parallel == 4
        assert args.workers is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--workers", "2", "--parallel", "4"],
            ["campaign", "--parallel", "4", "--workers", "2"],
        ],
        ids=["workers-first", "parallel-first"],
    )
    def test_workers_and_parallel_conflict(self, argv, capsys):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestExitCodes:
    """The documented exit-code contract: 0 pass, 1 findings, 2 usage."""

    def _uniform_matrix_file(self, tmp_path, value):
        from repro.arrestment.system import build_arrestment_model
        from repro.core.permeability import PermeabilityMatrix

        matrix = PermeabilityMatrix.uniform(build_arrestment_model(), value)
        path = tmp_path / "matrix.json"
        path.write_text(matrix.to_json(), encoding="utf-8")
        return path

    def test_campaign_rejects_unknown_flag(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--frobnicate"])
        assert excinfo.value.code == 2

    def test_campaign_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--backend", "warp-drive"])
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err

    def test_verify_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--backend", "warp-drive"])
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err

    def test_lint_clean_system_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        capsys.readouterr()

    def test_lint_findings_exit_one(self, tmp_path, capsys):
        matrix_file = self._uniform_matrix_file(tmp_path, 0.0)
        code = main(
            ["lint", "--matrix", str(matrix_file), "--fail-on", "warning"]
        )
        assert code == 1
        capsys.readouterr()

    def test_lint_paper_matrix_usage_error_exits_two(self, capsys):
        assert main(["lint", "--system", "arrestment", "--paper-matrix"]) == 2
        assert "--system fig2" in capsys.readouterr().err

    def test_analyze_exits_zero(self, tmp_path, capsys):
        matrix_file = self._uniform_matrix_file(tmp_path, 0.5)
        assert main(["analyze", str(matrix_file)]) == 0
        capsys.readouterr()

    def test_analyze_requires_matrix_argument(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze"])
        assert excinfo.value.code == 2

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["obs"])
        assert excinfo.value.code == 2

    def test_obs_validate_junk_exits_one(self, tmp_path, capsys):
        junk = tmp_path / "events.jsonl"
        junk.write_text("this is not jsonl {", encoding="utf-8")
        assert main(["obs", "validate", str(junk)]) == 1
        assert "INVALID" in capsys.readouterr().err

    @pytest.mark.slow
    def test_verify_fuzz_pass_exits_zero(self, tmp_path, capsys):
        code = main(
            ["verify", "--seeds", "2", "--corpus", str(tmp_path / "corpus")]
        )
        assert code == 0
        assert "all oracle checks passed" in capsys.readouterr().out

    @pytest.mark.slow
    def test_verify_backend_filter_exits_zero(self, tmp_path, capsys):
        code = main(
            ["verify", "--seeds", "1", "--backend", "batched",
             "--corpus", str(tmp_path / "corpus")]
        )
        assert code == 0
        assert "2 strategies" in capsys.readouterr().out

    def test_verify_replay_failure_exits_one(self, tmp_path, capsys):
        from repro.verify import Reproducer, write_reproducer

        from tests.verify_cases import unfired_trap_triple

        spec, campaign = unfired_trap_triple()
        path = write_reproducer(
            tmp_path,
            Reproducer(kind="generated", campaign=campaign, spec=spec),
        )
        assert main(["verify", "--replay", str(path)]) == 1
        assert "exact-agreement" in capsys.readouterr().err

    def test_verify_replay_empty_corpus_exits_two(self, tmp_path, capsys):
        code = main(
            ["verify", "--replay", "--corpus", str(tmp_path / "nowhere")]
        )
        assert code == 2
        assert "no reproducers" in capsys.readouterr().err

    def test_verify_rejects_bad_seed_count(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--seeds", "plenty"])
        assert excinfo.value.code == 2


class TestFlowExitCodes:
    """``repro flow`` mirrors the lint exit-code matrix.

    0 on a clean analysis, 1 when findings reach ``--fail-on``, 2 on a
    usage error — same contract as ``repro lint``.
    """

    def _stub_runner_with_findings(self):
        """A runner whose flow analysis yields R013 and R014 findings."""
        from tests.test_flow import StubXorModule, build_chain_system

        class _Runner:
            system = build_chain_system(width=8)
            modules = {
                "M0": StubXorModule((("s0", (("ext", 0x0F),)),)),
                "M1": StubXorModule((("out", (("s0", 0),)),)),
            }

        return _Runner()

    def test_flow_clean_shipped_systems_exit_zero(self, capsys):
        # Shipped systems are all-opaque: no findings even at --fail-on
        # info, matching lint's clean-system behaviour.
        for system in ("arrestment", "fig2", "twonode"):
            assert main(["flow", "--system", system, "--fail-on", "info"]) == 0
            capsys.readouterr()

    def test_flow_findings_exit_one_at_threshold(self, capsys, monkeypatch):
        import repro.cli as cli_module

        runner = self._stub_runner_with_findings()
        monkeypatch.setattr(
            cli_module, "build_arrestment_run", lambda case: runner
        )
        # R013 is a warning: below the default error threshold...
        assert main(["flow"]) == 0
        capsys.readouterr()
        # ...and at or above --fail-on warning/info it gates, like lint.
        assert main(["flow", "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "R013" in out
        assert main(["flow", "--fail-on", "info"]) == 1
        assert "R014" in capsys.readouterr().out

    def test_flow_usage_errors_exit_two(self, capsys):
        for argv in (
            ["flow", "--system", "warp-drive"],
            ["flow", "--format", "xml"],
            ["flow", "--fail-on", "never"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            capsys.readouterr()

    def test_flow_sarif_output_file(self, tmp_path, capsys):
        from repro.report.sarif import validate_sarif

        target = tmp_path / "flow.sarif"
        assert main(
            ["flow", "--format", "sarif", "--output", str(target)]
        ) == 0
        assert str(target) in capsys.readouterr().out
        log = json.loads(target.read_text(encoding="utf-8"))
        validate_sarif(log)
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-flow"


class TestTwoNodeFlags:
    def test_campaign_twonode_flag(self):
        with pytest.warns(DeprecationWarning):
            args = build_parser().parse_args(
                ["campaign", "--twonode", "--parallel", "4"]
            )
        assert args.twonode is True
        assert args.parallel == 4

    def test_analyze_twonode_flag(self):
        args = build_parser().parse_args(["analyze", "m.json", "--twonode"])
        assert args.twonode is True

    def test_paper_grid_flag(self):
        args = build_parser().parse_args(["campaign", "--paper-grid"])
        assert args.paper_grid is True
