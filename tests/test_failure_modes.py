"""Tests for the FMECA-style failure-mode classification."""

from __future__ import annotations

import pytest

from repro.injection.failure_modes import (
    FailureMode,
    LocationCriticality,
    SeverityLimits,
    classify_run,
)
from repro.injection.golden_run import GoldenRun, GoldenRunComparison
from repro.injection.outcomes import InjectionOutcome
from repro.simulation.runtime import RunResult
from repro.simulation.traces import TraceSet


def run_result(telemetry: dict) -> RunResult:
    return RunResult(
        traces=TraceSet(), duration_ms=100, final_signals={}, telemetry=telemetry
    )


def golden(position=300.0, decel=7.0, stop=9000.0) -> GoldenRun:
    return GoldenRun(
        "case",
        run_result(
            {
                "position_m": position,
                "peak_decel_ms2": decel,
                "stop_time_ms": stop,
            }
        ),
    )


def outcome(error_free: bool) -> InjectionOutcome:
    divergences = {"TOC2": None if error_free else 50}
    return InjectionOutcome(
        case_id="case",
        module="M",
        input_signal="x",
        scheduled_time_ms=10,
        fired_at_ms=10,
        error_model="bitflip[0]",
        comparison=GoldenRunComparison("case", divergences),
    )


LIMITS = SeverityLimits()


class TestClassifyRun:
    def test_no_effect(self):
        injected = run_result(
            {"position_m": 300.0, "peak_decel_ms2": 7.0, "stop_time_ms": 9000.0}
        )
        assert (
            classify_run(injected, golden(), outcome(error_free=True), LIMITS)
            is FailureMode.NO_EFFECT
        )

    def test_tolerated(self):
        injected = run_result(
            {"position_m": 302.0, "peak_decel_ms2": 7.5, "stop_time_ms": 9100.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.TOLERATED
        )

    def test_degraded_by_rollout(self):
        injected = run_result(
            {"position_m": 320.0, "peak_decel_ms2": 7.0, "stop_time_ms": 9500.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.DEGRADED
        )

    def test_degraded_by_deceleration(self):
        injected = run_result(
            {"position_m": 300.0, "peak_decel_ms2": 12.0, "stop_time_ms": 9000.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.DEGRADED
        )

    def test_overrun(self):
        injected = run_result(
            {"position_m": 355.0, "peak_decel_ms2": 7.0, "stop_time_ms": -1.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.OVERRUN
        )

    def test_overload(self):
        injected = run_result(
            {"position_m": 200.0, "peak_decel_ms2": 35.0, "stop_time_ms": 5000.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.OVERLOAD
        )

    def test_hung(self):
        injected = run_result(
            {"position_m": 310.0, "peak_decel_ms2": 7.0, "stop_time_ms": -1.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.HUNG
        )

    def test_hang_only_counts_when_golden_stopped(self):
        injected = run_result(
            {"position_m": 310.0, "peak_decel_ms2": 7.0, "stop_time_ms": -1.0}
        )
        reference = golden(stop=-1.0)  # golden did not stop either
        assert (
            classify_run(injected, reference, outcome(False), LIMITS)
            is FailureMode.TOLERATED
        )

    def test_severity_flags(self):
        assert FailureMode.OVERRUN.is_severe
        assert FailureMode.HUNG.is_severe
        assert not FailureMode.DEGRADED.is_severe
        assert not FailureMode.NO_EFFECT.is_severe


class TestBoundaryClassification:
    """The limits are exclusive: telemetry exactly AT a limit is legal."""

    def test_position_exactly_at_overrun_limit_is_not_overrun(self):
        injected = run_result(
            {"position_m": LIMITS.max_position_m, "peak_decel_ms2": 7.0,
             "stop_time_ms": 9500.0}
        )
        mode = classify_run(injected, golden(), outcome(False), LIMITS)
        assert mode is not FailureMode.OVERRUN
        # 350 m is 50 m beyond the 300 m Golden Run — degraded, not severe.
        assert mode is FailureMode.DEGRADED

    def test_position_just_over_limit_is_overrun(self):
        injected = run_result(
            {"position_m": LIMITS.max_position_m + 1e-9, "peak_decel_ms2": 7.0,
             "stop_time_ms": -1.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.OVERRUN
        )

    def test_decel_exactly_at_structural_limit_is_not_overload(self):
        injected = run_result(
            {"position_m": 300.0, "peak_decel_ms2": LIMITS.max_decel_ms2,
             "stop_time_ms": 9000.0}
        )
        mode = classify_run(injected, golden(), outcome(False), LIMITS)
        assert mode is not FailureMode.OVERLOAD
        assert mode is FailureMode.DEGRADED

    def test_decel_just_over_limit_is_overload(self):
        injected = run_result(
            {"position_m": 300.0, "peak_decel_ms2": LIMITS.max_decel_ms2 + 1e-9,
             "stop_time_ms": 9000.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.OVERLOAD
        )

    def test_excess_exactly_at_tolerance_is_tolerated(self):
        injected = run_result(
            {
                "position_m": 300.0 + LIMITS.position_tolerance_m,
                "peak_decel_ms2": 7.0 + LIMITS.decel_tolerance_ms2,
                "stop_time_ms": 9200.0,
            }
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is FailureMode.TOLERATED
        )

    def test_never_stopped_plant_within_limits_is_not_severe(self):
        # Neither run arrests the aircraft: without a stopped Golden Run
        # there is no hang, and within the absolute limits the run falls
        # through to the tolerance comparison.
        injected = run_result(
            {"position_m": 340.0, "peak_decel_ms2": 5.0, "stop_time_ms": -1.0}
        )
        reference = golden(position=345.0, decel=5.0, stop=-1.0)
        assert (
            classify_run(injected, reference, outcome(False), LIMITS)
            is FailureMode.TOLERATED
        )

    def test_stop_at_slot_zero_counts_as_stopped(self):
        injected = run_result(
            {"position_m": 300.0, "peak_decel_ms2": 7.0, "stop_time_ms": 0.0}
        )
        assert (
            classify_run(injected, golden(), outcome(False), LIMITS)
            is not FailureMode.HUNG
        )


class TestLocationCriticality:
    def test_fractions(self):
        loc = LocationCriticality("M", "x")
        loc.counts[FailureMode.NO_EFFECT] = 6
        loc.counts[FailureMode.TOLERATED] = 2
        loc.counts[FailureMode.OVERRUN] = 2
        assert loc.n_injections == 10
        assert loc.effect_fraction == pytest.approx(0.4)
        assert loc.severe_fraction == pytest.approx(0.2)

    def test_empty(self):
        loc = LocationCriticality("M", "x")
        assert loc.effect_fraction == 0.0
        assert loc.severe_fraction == 0.0


class TestCampaignClassification:
    @pytest.mark.slow
    def test_arrestment_criticality_matrix(self):
        from repro.arrestment import build_arrestment_model, build_arrestment_run
        from repro.arrestment.testcases import ArrestmentTestCase
        from repro.injection.campaign import CampaignConfig
        from repro.injection.error_models import BitFlip
        from repro.injection.failure_modes import classify_campaign

        report, result = classify_campaign(
            build_arrestment_model(),
            build_arrestment_run,
            {"m14000-v60": ArrestmentTestCase(14000, 60)},
            CampaignConfig(
                duration_ms=14000,
                injection_times_ms=(2500,),
                error_models=tuple(BitFlip(b) for b in (0, 7, 14, 15)),
            ),
        )
        assert len(result) == 13 * 4
        by_location = report.by_location()
        # The slot counter is mission-critical: corrupting it derails
        # the whole schedule.
        clock = by_location[("CLOCK", "ms_slot_nbr")]
        assert clock.effect_fraction == 1.0
        # The conditioned pressure input is benign (OB3's low exposure).
        pres = by_location[("PRES_S", "ADC")]
        assert pres.severe_fraction == 0.0
        text = report.render()
        assert "Criticality matrix" in text
