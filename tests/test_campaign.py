"""Unit tests for campaign orchestration and permeability estimation.

The toy FILT→AMP chain has exactly known permeabilities under the
bit-flip model (FILT drops the low byte, AMP is the identity), so the
whole experimental pipeline — campaign grid, traps, GRC, aggregation,
estimation — is verified against analytic ground truth.
"""

from __future__ import annotations

import pytest

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip, bit_flip_models
from repro.injection.estimator import PermeabilityEstimator, estimate_matrix
from repro.injection.selection import paper_grid, paper_times, sampled_grid
from repro.model.errors import CampaignError

from tests.conftest import build_toy_model, build_toy_run


def toy_campaign(**overrides) -> InjectionCampaign:
    defaults = dict(
        duration_ms=40,
        injection_times_ms=(5, 20),
        error_models=tuple(bit_flip_models(16)),
        seed=1,
    )
    defaults.update(overrides)
    return InjectionCampaign(
        build_toy_model(),
        lambda case: build_toy_run(),
        {"case0": None},
        CampaignConfig(**defaults),
    )


class TestConfig:
    def test_paper_defaults(self):
        config = CampaignConfig()
        assert config.injection_times_ms == paper_times()
        assert len(config.error_models) == 16
        assert config.runs_per_target() == 160

    def test_paper_times_layout(self):
        times = paper_times()
        assert times[0] == 500
        assert times[-1] == 5000
        assert len(times) == 10
        steps = {b - a for a, b in zip(times, times[1:])}
        assert steps == {500}

    def test_injection_must_fit_duration(self):
        with pytest.raises(CampaignError):
            CampaignConfig(duration_ms=100, injection_times_ms=(100,))

    def test_empty_grid_rejected(self):
        with pytest.raises(CampaignError):
            CampaignConfig(injection_times_ms=())
        with pytest.raises(CampaignError):
            CampaignConfig(error_models=())

    def test_selection_helpers(self):
        grid = paper_grid()
        assert len(grid) == 160
        sample = sampled_grid([1, 2], bit_flip_models(4), 3, seed=0)
        assert len(sample) == 3
        full = sampled_grid([1], bit_flip_models(2), 99)
        assert len(full) == 2


class TestCampaignExecution:
    def test_total_runs(self):
        campaign = toy_campaign()
        # 2 targets (FILT.src, AMP.filt) x 2 times x 16 bits x 1 case.
        assert campaign.total_runs() == 64

    def test_targets_default_to_all_inputs(self):
        campaign = toy_campaign()
        assert campaign.targets == (("FILT", "src"), ("AMP", "filt"))

    def test_explicit_targets_validated(self):
        with pytest.raises(Exception):
            toy_campaign(targets=(("FILT", "nope"),))

    def test_progress_callback(self):
        campaign = toy_campaign()
        seen = []
        campaign.execute(progress=lambda done, total: seen.append((done, total)))
        assert seen[0] == (1, 64)
        assert seen[-1] == (64, 64)

    def test_all_traps_fire(self):
        result = toy_campaign().execute()
        assert result.n_fired() == len(result) == 64

    def test_golden_runs_recorded(self):
        campaign = toy_campaign()
        campaign.execute()
        assert set(campaign.golden_runs()) == {"case0"}

    def test_sequence_test_cases_are_labelled(self):
        campaign = InjectionCampaign(
            build_toy_model(),
            lambda case: build_toy_run(),
            [None, None],
            CampaignConfig(
                duration_ms=20,
                injection_times_ms=(5,),
                error_models=(BitFlip(15),),
            ),
        )
        result = campaign.execute()
        assert result.case_ids() == ("case00", "case01")

    def test_empty_test_cases_rejected(self):
        with pytest.raises(CampaignError):
            InjectionCampaign(build_toy_model(), lambda c: build_toy_run(), {})

    def test_determinism(self):
        first = estimate_matrix(toy_campaign().execute())
        second = estimate_matrix(toy_campaign().execute())
        assert first.to_jsonable() == second.to_jsonable()


class TestEstimation:
    def test_analytic_ground_truth(self):
        """FILT passes only the 8 high bits; AMP passes everything."""
        matrix = estimate_matrix(toy_campaign().execute())
        assert matrix.get("FILT", "src", "filt") == pytest.approx(0.5)
        assert matrix.get("AMP", "filt", "out") == pytest.approx(1.0)

    def test_counts_recorded(self):
        matrix = estimate_matrix(toy_campaign().execute())
        estimate = matrix.estimate("FILT", "src", "filt")
        assert estimate.n_injections == 32
        assert estimate.n_errors == 16

    def test_subset_estimation_incomplete(self):
        campaign = toy_campaign(targets=(("AMP", "filt"),))
        result = campaign.execute()
        with pytest.raises(CampaignError):
            estimate_matrix(result)
        matrix = estimate_matrix(result, require_complete=False)
        assert not matrix.is_complete()
        assert matrix.get("AMP", "filt", "out") == 1.0

    def test_predicate_filter(self):
        result = toy_campaign().execute()
        matrix = estimate_matrix(
            result,
            predicate=lambda o: o.scheduled_time_ms == 5,
        )
        assert matrix.estimate("AMP", "filt", "out").n_injections == 16

    def test_estimator_wrapper(self):
        estimator = PermeabilityEstimator(
            build_toy_model(),
            lambda case: build_toy_run(),
            {"case0": None},
            CampaignConfig(
                duration_ms=30,
                injection_times_ms=(5,),
                error_models=tuple(bit_flip_models(16)),
            ),
        )
        assert estimator.result is None
        matrix = estimator.estimate()
        assert estimator.result is not None
        assert matrix.get("FILT", "src", "filt") == pytest.approx(0.5)
        # Second call reuses the campaign result.
        again = estimator.estimate()
        assert again.to_jsonable() == matrix.to_jsonable()


class TestDirectOnlyRule:
    def test_direct_vs_total_identical_without_feedback(self):
        """The toy chain has no loop back to an injected input, so the
        paper's direct-error rule changes nothing."""
        result = toy_campaign().execute()
        direct = result.pair_counts(direct_only=True)
        total = result.pair_counts(direct_only=False)
        for key in direct:
            assert direct[key].n_errors == total[key].n_errors
