"""Unit tests for the resolved connection records."""

from __future__ import annotations

import pytest

from repro.model.connection import Connection, ExternalInput, ExternalOutput
from repro.model.ports import InputPort, OutputPort


class TestConnection:
    def test_valid_connection(self):
        connection = Connection(
            producer=OutputPort("A", 1, "sig"),
            consumer=InputPort("B", 2, "sig"),
        )
        assert connection.signal == "sig"
        assert not connection.is_feedback
        assert "A" in str(connection) and "B" in str(connection)

    def test_feedback_detection(self):
        connection = Connection(
            producer=OutputPort("M", 1, "loop"),
            consumer=InputPort("M", 1, "loop"),
        )
        assert connection.is_feedback

    def test_producer_must_be_output(self):
        with pytest.raises(ValueError):
            Connection(
                producer=InputPort("A", 1, "sig"),
                consumer=InputPort("B", 1, "sig"),
            )

    def test_consumer_must_be_input(self):
        with pytest.raises(ValueError):
            Connection(
                producer=OutputPort("A", 1, "sig"),
                consumer=OutputPort("B", 1, "sig"),
            )

    def test_signal_names_must_agree(self):
        with pytest.raises(ValueError):
            Connection(
                producer=OutputPort("A", 1, "x"),
                consumer=InputPort("B", 1, "y"),
            )


class TestExternalLinks:
    def test_external_input(self):
        link = ExternalInput(consumer=InputPort("DIST_S", 1, "PACNT"))
        assert link.signal == "PACNT"
        assert "external" in str(link)

    def test_external_input_requires_input_port(self):
        with pytest.raises(ValueError):
            ExternalInput(consumer=OutputPort("M", 1, "x"))

    def test_external_output(self):
        link = ExternalOutput(producer=OutputPort("PRES_A", 1, "TOC2"))
        assert link.signal == "TOC2"
        assert "external" in str(link)

    def test_external_output_requires_output_port(self):
        with pytest.raises(ValueError):
            ExternalOutput(producer=InputPort("M", 1, "x"))

    def test_ordering(self):
        a = ExternalInput(consumer=InputPort("A", 1, "x"))
        b = ExternalInput(consumer=InputPort("B", 1, "y"))
        assert sorted([b, a]) == [a, b]
