"""Integration: campaigns under observation, summaries and the obs CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main, make_progress_printer
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.obs import CampaignObserver
from repro.obs.events import (
    CampaignFinished,
    CampaignStarted,
    read_events,
    validate_events,
)
from repro.obs.summary import render_summary, summarize_events

from tests.conftest import build_toy_model, toy_factory


def build_campaign(observer=None, times=(16, 32), bits=4) -> InjectionCampaign:
    config = CampaignConfig(
        duration_ms=64,
        injection_times_ms=tuple(times),
        error_models=tuple(bit_flip_models(bits)),
        seed=2001,
    )
    return InjectionCampaign(
        build_toy_model(), toy_factory, ["c"], config, observer=observer
    )


class TestSerialObservation:
    def test_events_metrics_and_propagation(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        observer = CampaignObserver.to_files(
            events_path=events_path, system=build_toy_model()
        )
        campaign = build_campaign(observer)
        result = campaign.execute()
        observer.close()

        n_events = validate_events(events_path)
        events = list(read_events(events_path))
        assert n_events == len(events)
        assert isinstance(events[0].event, CampaignStarted)
        assert isinstance(events[-1].event, CampaignFinished)
        assert events[-1].event.n_runs == len(result) == 16
        assert [parsed.seq for parsed in events] == list(range(n_events))

        metrics = observer.metrics
        assert metrics.counter("outcomes.total").value == 16
        assert metrics.counter("runs.golden").value == 1
        assert metrics.counter("runs.injection").value == 16
        assert metrics.counter("checkpoint.reused").value == 16
        assert metrics.histogram("phase.golden_run.seconds").count == 1
        assert metrics.histogram("phase.injection_run.seconds").count == 16
        assert metrics.histogram("phase.comparison.seconds").count == 16
        assert metrics.histogram("checkpoint.save.seconds").count == 2
        assert metrics.histogram("checkpoint.restore.seconds").count == 16

        # Live propagation fold agrees with the post-hoc estimator.
        observed = observer.propagation.to_matrix()
        assert observed.to_jsonable() == estimate_matrix(result).to_jsonable()

    def test_unobserved_campaign_has_no_observer(self):
        campaign = build_campaign()
        assert campaign.observer is None
        assert len(campaign.execute()) == 16


class TestParallelObservation:
    def test_parallel_matches_serial(self, tmp_path):
        serial_obs = CampaignObserver.to_files(system=build_toy_model())
        serial = build_campaign(serial_obs).execute()

        events_path = tmp_path / "events.jsonl"
        parallel_obs = CampaignObserver.to_files(
            events_path=events_path, system=build_toy_model()
        )
        parallel = build_campaign(parallel_obs).execute_parallel(
            max_workers=2, chunk_size=1
        )
        parallel_obs.close()

        # Outcome parity between the two paths, as without observation.
        assert [
            (o.module, o.input_signal, o.scheduled_time_ms, o.error_model)
            for o in parallel
        ] == [
            (o.module, o.input_signal, o.scheduled_time_ms, o.error_model)
            for o in serial
        ]
        # Merged worker metrics equal the serial per-IR tallies.
        parallel_metrics = parallel_obs.metrics
        assert parallel_metrics.counter("outcomes.total").value == 16
        assert (
            parallel_metrics.histogram("phase.injection_run.seconds").count == 16
        )
        assert parallel_metrics.counter("chunk.completed").value == 2
        # Propagation folds agree exactly across execution modes.
        assert (
            parallel_obs.propagation.to_matrix().to_jsonable()
            == serial_obs.propagation.to_matrix().to_jsonable()
        )

        validate_events(events_path)
        events = list(read_events(events_path))
        assert events[0].event.mode == "parallel"
        chunk_events = [
            parsed for parsed in events
            if parsed.type_name == "ChunkCompleted"
        ]
        assert len(chunk_events) == 2


class TestSummary:
    def test_summarize_round_trip(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        observer = CampaignObserver.to_files(
            events_path=events_path, system=build_toy_model()
        )
        build_campaign(observer).execute()
        observer.close()

        summary = summarize_events(read_events(events_path))
        assert summary.total_runs == 16
        assert sum(summary.outcome_mix.values()) == 16
        assert summary.elapsed_s is not None
        # Arc denominators equal injections at the arc's location.
        for (module, signal, _output), n in summary.arc_injections.items():
            expected = 8  # 2 times x 4 bit positions per target
            assert n == expected, (module, signal)

        text = render_summary(summary)
        assert "Campaign manifest" in text
        assert "Outcome mix" in text
        assert "Phase breakdown" in text
        assert "Hottest observed propagation arcs" in text
        # AMP is the identity: its arc propagates on every fired run.
        assert "AMP.filt -> out" in text


class TestProgressPrinter:
    def test_prints_progress_and_final_line(self):
        stream = io.StringIO()
        callback = make_progress_printer(interval_s=0.0, stream=stream)
        for done in (1, 8, 16):
            callback(done, 16)
        text = stream.getvalue()
        assert "1/16 (6%" in text
        assert "16/16 (100%" in text
        assert "ETA" in text

    def test_rate_limit_suppresses_intermediate_lines(self):
        stream = io.StringIO()
        callback = make_progress_printer(interval_s=3600.0, stream=stream)
        callback(1, 16)     # always printed (first call)
        callback(2, 16)     # suppressed: inside the interval
        callback(16, 16)    # always printed (final)
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 2

    def test_phase_suffix_from_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("phase.golden_run.seconds").observe(1.0)
        stream = io.StringIO()
        callback = make_progress_printer(
            interval_s=0.0, stream=stream, metrics=registry
        )
        callback(16, 16)
        assert "GR 1.0s" in stream.getvalue()


class TestObsCli:
    @pytest.fixture()
    def events_file(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        observer = CampaignObserver.to_files(
            events_path=events_path, system=build_toy_model()
        )
        build_campaign(observer).execute()
        observer.close()
        return events_path

    def test_obs_validate(self, events_file, capsys):
        assert main(["obs", "validate", str(events_file)]) == 0
        assert "schema valid" in capsys.readouterr().out

    def test_obs_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 99, "seq": 0, "ts": 0, "type": "X", "data": {}}\n')
        assert main(["obs", "validate", str(bad)]) == 1
        assert "schema version" in capsys.readouterr().err

    def test_obs_summarize(self, events_file, capsys):
        assert main(["obs", "summarize", str(events_file)]) == 0
        out = capsys.readouterr().out
        assert "Campaign manifest" in out
        assert "Outcome mix" in out

    def test_obs_summarize_with_metrics_file(
        self, events_file, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(
            json.dumps(
                {
                    "phase.golden_run.seconds": {
                        "type": "histogram",
                        "buckets": [1.0],
                        "counts": [1, 0],
                        "sum": 0.5,
                        "count": 1,
                        "min": 0.5,
                        "max": 0.5,
                    }
                }
            )
        )
        code = main(
            ["obs", "summarize", str(events_file), "--metrics", str(metrics_path)]
        )
        assert code == 0
        assert "Golden Run" in capsys.readouterr().out
