"""Unit tests for :mod:`repro.model.signal`."""

from __future__ import annotations

import pytest

from repro.model.errors import InvalidProbabilityError
from repro.model.signal import (
    SignalKind,
    SignalSpec,
    from_signed,
    to_signed,
    wrap_unsigned,
)


class TestWrapHelpers:
    def test_wrap_identity_in_range(self):
        assert wrap_unsigned(1234, 16) == 1234

    def test_wrap_overflow(self):
        assert wrap_unsigned(0x1_0005, 16) == 5

    def test_wrap_negative(self):
        assert wrap_unsigned(-1, 16) == 0xFFFF

    def test_wrap_narrow_width(self):
        assert wrap_unsigned(9, 3) == 1

    def test_to_signed_positive(self):
        assert to_signed(5, 16) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFFFF, 16) == -1

    def test_to_signed_min(self):
        assert to_signed(0x8000, 16) == -32768

    def test_from_signed_roundtrip(self):
        for value in (-32768, -1, 0, 1, 32767):
            assert to_signed(from_signed(value, 16), 16) == value

    def test_signed_wraps_out_of_range(self):
        assert to_signed(from_signed(40000, 16), 16) == 40000 - 65536


class TestSignalSpec:
    def test_defaults(self):
        spec = SignalSpec("pulscnt")
        assert spec.width == 16
        assert spec.kind is SignalKind.UNSIGNED
        assert spec.initial == 0
        assert spec.error_probability is None

    def test_max_unsigned(self):
        assert SignalSpec("s").max_unsigned == 65535
        assert SignalSpec("s", width=8).max_unsigned == 255

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SignalSpec("")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            SignalSpec("s", width=0)

    def test_bad_error_probability_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            SignalSpec("s", error_probability=1.5)

    def test_good_error_probability(self):
        spec = SignalSpec("s", error_probability=0.25)
        assert spec.error_probability == 0.25

    def test_wrap_uses_width(self):
        spec = SignalSpec("s", width=8)
        assert spec.wrap(0x1FF) == 0xFF

    def test_flip_bit(self):
        spec = SignalSpec("s")
        assert spec.flip_bit(0, 0) == 1
        assert spec.flip_bit(0, 15) == 0x8000
        assert spec.flip_bit(0xFFFF, 15) == 0x7FFF

    def test_flip_bit_is_involution(self):
        spec = SignalSpec("s")
        for bit in range(16):
            assert spec.flip_bit(spec.flip_bit(0x1234, bit), bit) == 0x1234

    def test_flip_bit_out_of_range(self):
        spec = SignalSpec("s", width=8)
        with pytest.raises(ValueError):
            spec.flip_bit(0, 8)

    def test_encode_boolean(self):
        spec = SignalSpec("flag", kind=SignalKind.BOOLEAN)
        assert spec.encode(True) == 1
        assert spec.encode(False) == 0

    def test_decode_boolean_nonzero_true(self):
        spec = SignalSpec("flag", kind=SignalKind.BOOLEAN)
        assert spec.decode(0) is False
        assert spec.decode(1) is True

    def test_encode_decode_signed(self):
        spec = SignalSpec("delta", kind=SignalKind.SIGNED)
        assert spec.decode(spec.encode(-5)) == -5

    def test_encode_decode_unsigned(self):
        spec = SignalSpec("count")
        assert spec.decode(spec.encode(70000)) == 70000 - 65536

    def test_describe_mentions_name_and_unit(self):
        spec = SignalSpec("TCNT", unit="ticks", description="free-running timer")
        text = spec.describe()
        assert "TCNT" in text
        assert "ticks" in text
        assert "free-running timer" in text

    def test_frozen(self):
        spec = SignalSpec("s")
        with pytest.raises(AttributeError):
            spec.width = 8  # type: ignore[misc]
