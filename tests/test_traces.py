"""Unit tests for signal traces and trace sets."""

from __future__ import annotations

import pytest

from repro.model.errors import TraceMismatchError
from repro.simulation.traces import SignalTrace, TraceSet


class TestSignalTrace:
    def test_append_and_index(self):
        trace = SignalTrace("s")
        trace.append(1)
        trace.append(2)
        assert len(trace) == 2
        assert trace[1] == 2

    def test_first_divergence_none_when_equal(self):
        a = SignalTrace("s", [1, 2, 3])
        b = SignalTrace("s", [1, 2, 3])
        assert a.first_divergence(b) is None
        assert not a.differs_from(b)

    def test_first_divergence_index(self):
        a = SignalTrace("s", [1, 2, 3, 4])
        b = SignalTrace("s", [1, 2, 9, 9])
        assert a.first_divergence(b) == 2
        assert a.differs_from(b)

    def test_divergence_at_first_sample(self):
        a = SignalTrace("s", [5])
        b = SignalTrace("s", [6])
        assert a.first_divergence(b) == 0

    def test_signal_mismatch_rejected(self):
        with pytest.raises(TraceMismatchError):
            SignalTrace("a", [1]).first_divergence(SignalTrace("b", [1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceMismatchError):
            SignalTrace("s", [1]).first_divergence(SignalTrace("s", [1, 2]))

    def test_values_between(self):
        trace = SignalTrace("s", list(range(10)))
        assert list(trace.values_between(3, 6)) == [3, 4, 5]


class TestTraceSet:
    def make(self) -> TraceSet:
        return TraceSet(
            [SignalTrace("a", [1, 2, 3]), SignalTrace("b", [4, 5, 6])]
        )

    def test_membership_and_lookup(self):
        traces = self.make()
        assert "a" in traces
        assert "ghost" not in traces
        assert traces["b"][0] == 4

    def test_missing_lookup_raises(self):
        with pytest.raises(TraceMismatchError):
            self.make()["ghost"]

    def test_duplicate_rejected(self):
        traces = self.make()
        with pytest.raises(TraceMismatchError):
            traces.add(SignalTrace("a", []))

    def test_signals_and_len(self):
        traces = self.make()
        assert traces.signals == ("a", "b")
        assert len(traces) == 2

    def test_duration(self):
        assert self.make().duration_ms == 3
        assert TraceSet().duration_ms == 0

    def test_check_rectangular(self):
        traces = self.make()
        traces.check_rectangular()
        traces.add(SignalTrace("c", [1]))
        with pytest.raises(TraceMismatchError):
            traces.check_rectangular()

    def test_first_divergences(self):
        reference = self.make()
        other = TraceSet(
            [SignalTrace("a", [1, 2, 3]), SignalTrace("b", [4, 9, 6])]
        )
        divergences = other.first_divergences(reference)
        assert divergences == {"a": None, "b": 1}

    def test_first_divergences_signal_mismatch(self):
        reference = self.make()
        other = TraceSet([SignalTrace("a", [1, 2, 3])])
        with pytest.raises(TraceMismatchError):
            other.first_divergences(reference)

    def test_to_mapping_copies(self):
        traces = self.make()
        mapping = traces.to_mapping()
        mapping["a"].append(99)
        assert len(traces["a"]) == 3

    def test_iteration(self):
        assert [trace.signal for trace in self.make()] == ["a", "b"]
