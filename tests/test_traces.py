"""Unit tests for signal traces and trace sets."""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.errors import TraceMismatchError
from repro.simulation.traces import (
    _SCAN_CHUNK,
    SignalTrace,
    TraceSet,
    pack_trace_samples,
    trace_views,
)


def naive_first_divergence(a: SignalTrace, b: SignalTrace) -> int | None:
    """The obvious per-element scan the chunked fast path must match."""
    for index in range(len(a)):
        if a.samples[index] != b.samples[index]:
            return index
    return None


class TestSignalTrace:
    def test_append_and_index(self):
        trace = SignalTrace("s")
        trace.append(1)
        trace.append(2)
        assert len(trace) == 2
        assert trace[1] == 2

    def test_first_divergence_none_when_equal(self):
        a = SignalTrace("s", [1, 2, 3])
        b = SignalTrace("s", [1, 2, 3])
        assert a.first_divergence(b) is None
        assert not a.differs_from(b)

    def test_first_divergence_index(self):
        a = SignalTrace("s", [1, 2, 3, 4])
        b = SignalTrace("s", [1, 2, 9, 9])
        assert a.first_divergence(b) == 2
        assert a.differs_from(b)

    def test_divergence_at_first_sample(self):
        a = SignalTrace("s", [5])
        b = SignalTrace("s", [6])
        assert a.first_divergence(b) == 0

    def test_signal_mismatch_rejected(self):
        with pytest.raises(TraceMismatchError):
            SignalTrace("a", [1]).first_divergence(SignalTrace("b", [1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceMismatchError):
            SignalTrace("s", [1]).first_divergence(SignalTrace("s", [1, 2]))

    def test_values_between(self):
        trace = SignalTrace("s", list(range(10)))
        assert list(trace.values_between(3, 6)) == [3, 4, 5]


class TestChunkedDivergenceScan:
    """The chunked C-speed scan is pinned to the naive per-element scan."""

    @pytest.mark.parametrize(
        "flip_at",
        [
            0,
            1,
            _SCAN_CHUNK - 1,  # last element of the first chunk
            _SCAN_CHUNK,  # first element of the second chunk
            _SCAN_CHUNK + 1,
            2 * _SCAN_CHUNK - 1,
            2 * _SCAN_CHUNK + 17,
        ],
    )
    def test_single_flip_positions(self, flip_at):
        length = 2 * _SCAN_CHUNK + 100
        reference = SignalTrace("s", array("q", [7] * length))
        samples = array("q", [7] * length)
        samples[flip_at] ^= 1
        trace = SignalTrace("s", samples)
        assert trace.first_divergence(reference) == flip_at
        assert naive_first_divergence(trace, reference) == flip_at

    def test_equal_beyond_one_chunk(self):
        length = 3 * _SCAN_CHUNK + 5
        reference = SignalTrace("s", array("q", range(length)))
        trace = SignalTrace("s", array("q", range(length)))
        assert trace.first_divergence(reference) is None
        assert naive_first_divergence(trace, reference) is None

    def test_reports_first_of_many_divergences(self):
        samples = array("q", [0] * (_SCAN_CHUNK + 50))
        samples[_SCAN_CHUNK - 3] = 1
        samples[_SCAN_CHUNK + 20] = 2
        trace = SignalTrace("s", samples)
        reference = SignalTrace("s", array("q", [0] * len(samples)))
        assert trace.first_divergence(reference) == _SCAN_CHUNK - 3

    def test_negative_values_compare_correctly(self):
        """Byte-level comparison must agree with value-level comparison."""
        reference = SignalTrace("s", array("q", [-1, -2, 3]))
        trace = SignalTrace("s", array("q", [-1, -2, -3]))
        assert trace.first_divergence(reference) == 2

    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.integers(-(2**63), 2**63 - 1), min_size=1, max_size=300
        ),
        flips=st.lists(st.integers(0, 10_000), max_size=4),
    )
    def test_property_matches_naive_scan(self, samples, flips):
        reference = SignalTrace("s", array("q", samples))
        mutated = array("q", samples)
        for flip in flips:
            index = flip % len(mutated)
            # XOR in the unsigned domain, then re-sign to stay in 'q'.
            flipped = (mutated[index] ^ (1 << (flip % 64))) & (2**64 - 1)
            mutated[index] = flipped - 2**64 if flipped >= 2**63 else flipped
        trace = SignalTrace("s", mutated)
        assert trace.first_divergence(reference) == naive_first_divergence(
            trace, reference
        )

    def test_memoryview_backed_trace_compares(self):
        """View-backed traces (shared-memory reads) use the same scan."""
        backing = array("q", [1, 2, 3, 4])
        view = memoryview(backing)
        trace = SignalTrace("s", view)
        assert trace.samples is view  # zero-copy, not re-packed
        reference = SignalTrace("s", array("q", [1, 2, 9, 4]))
        assert trace.first_divergence(reference) == 2
        with pytest.raises((BufferError, TypeError, AttributeError)):
            trace.append(5)


class TestPackAndViews:
    def make(self) -> TraceSet:
        return TraceSet(
            [SignalTrace("a", [1, 2, 3]), SignalTrace("b", [-4, 5, 6])]
        )

    def test_round_trip_through_flat_buffer(self):
        traces = self.make()
        signals, duration, flat = pack_trace_samples(traces)
        assert signals == ("a", "b")
        assert duration == 3
        assert list(flat) == [1, 2, 3, -4, 5, 6]
        views = trace_views(flat, signals, duration)
        assert {s: list(v) for s, v in views.items()} == traces.to_mapping()

    def test_views_from_bytes_buffer(self):
        traces = self.make()
        signals, duration, flat = pack_trace_samples(traces)
        views = trace_views(flat.tobytes(), signals, duration)
        assert list(views["b"]) == [-4, 5, 6]

    def test_views_ignore_trailing_slack(self):
        """Shared-memory segments may be longer than the payload."""
        traces = self.make()
        signals, duration, flat = pack_trace_samples(traces)
        padded = flat.tobytes() + b"\x00" * 13
        views = trace_views(padded, signals, duration)
        assert list(views["a"]) == [1, 2, 3]

    def test_short_buffer_rejected(self):
        signals, duration, flat = pack_trace_samples(self.make())
        with pytest.raises(TraceMismatchError):
            trace_views(flat.tobytes()[:-8], signals, duration)
        with pytest.raises(TraceMismatchError):
            trace_views(array("q", [1, 2]), signals, duration)

    def test_pack_requires_rectangular(self):
        traces = self.make()
        traces.add(SignalTrace("c", [9]))
        with pytest.raises(TraceMismatchError):
            pack_trace_samples(traces)

    def test_view_backed_trace_set_round_trip(self):
        traces = self.make()
        signals, duration, flat = pack_trace_samples(traces)
        views = trace_views(flat, signals, duration)
        rebuilt = TraceSet(
            SignalTrace(signal, view) for signal, view in views.items()
        )
        assert rebuilt.to_mapping() == traces.to_mapping()
        assert rebuilt.first_divergences(traces) == {"a": None, "b": None}


class TestTraceSet:
    def make(self) -> TraceSet:
        return TraceSet(
            [SignalTrace("a", [1, 2, 3]), SignalTrace("b", [4, 5, 6])]
        )

    def test_membership_and_lookup(self):
        traces = self.make()
        assert "a" in traces
        assert "ghost" not in traces
        assert traces["b"][0] == 4

    def test_missing_lookup_raises(self):
        with pytest.raises(TraceMismatchError):
            self.make()["ghost"]

    def test_duplicate_rejected(self):
        traces = self.make()
        with pytest.raises(TraceMismatchError):
            traces.add(SignalTrace("a", []))

    def test_signals_and_len(self):
        traces = self.make()
        assert traces.signals == ("a", "b")
        assert len(traces) == 2

    def test_duration(self):
        assert self.make().duration_ms == 3
        assert TraceSet().duration_ms == 0

    def test_check_rectangular(self):
        traces = self.make()
        traces.check_rectangular()
        traces.add(SignalTrace("c", [1]))
        with pytest.raises(TraceMismatchError):
            traces.check_rectangular()

    def test_first_divergences(self):
        reference = self.make()
        other = TraceSet(
            [SignalTrace("a", [1, 2, 3]), SignalTrace("b", [4, 9, 6])]
        )
        divergences = other.first_divergences(reference)
        assert divergences == {"a": None, "b": 1}

    def test_first_divergences_signal_mismatch(self):
        reference = self.make()
        other = TraceSet([SignalTrace("a", [1, 2, 3])])
        with pytest.raises(TraceMismatchError):
            other.first_divergences(reference)

    def test_to_mapping_copies(self):
        traces = self.make()
        mapping = traces.to_mapping()
        mapping["a"].append(99)
        assert len(traces["a"]) == 3

    def test_iteration(self):
        assert [trace.signal for trace in self.make()] == ["a", "b"]
