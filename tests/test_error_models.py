"""Unit tests for the injection error models."""

from __future__ import annotations

import random

import pytest

from repro.injection.error_models import (
    BitFlip,
    DoubleBitFlip,
    Offset,
    RandomBitFlip,
    RandomReplacement,
    StuckAtOne,
    StuckAtZero,
    bit_flip_models,
)


RNG = random.Random(0)


class TestBitFlip:
    def test_flips_named_bit(self):
        assert BitFlip(0).apply(0, 16, RNG) == 1
        assert BitFlip(15).apply(0, 16, RNG) == 0x8000

    def test_involution(self):
        model = BitFlip(7)
        value = 0x1234
        assert model.apply(model.apply(value, 16, RNG), 16, RNG) == value

    def test_always_changes_value(self):
        for bit in range(16):
            assert BitFlip(bit).apply(0x5A5A, 16, RNG) != 0x5A5A

    def test_out_of_width_rejected_at_apply(self):
        with pytest.raises(ValueError):
            BitFlip(8).apply(0, 8, RNG)

    def test_negative_bit_rejected(self):
        with pytest.raises(ValueError):
            BitFlip(-1)

    def test_name(self):
        assert BitFlip(3).name == "bitflip[3]"

    def test_model_set(self):
        models = bit_flip_models(16)
        assert len(models) == 16
        assert [m.bit for m in models] == list(range(16))


class TestRandomModels:
    def test_random_bit_flip_changes_one_bit(self):
        rng = random.Random(42)
        for _ in range(50):
            corrupted = RandomBitFlip().apply(0x0F0F, 16, rng)
            assert bin(corrupted ^ 0x0F0F).count("1") == 1

    def test_random_bit_flip_deterministic_per_seed(self):
        a = RandomBitFlip().apply(0, 16, random.Random(7))
        b = RandomBitFlip().apply(0, 16, random.Random(7))
        assert a == b

    def test_random_replacement_always_differs(self):
        rng = random.Random(3)
        for value in (0, 1, 0xFFFF, 0x8000):
            assert RandomReplacement().apply(value, 16, rng) != value

    def test_random_replacement_in_range(self):
        rng = random.Random(9)
        for _ in range(100):
            assert 0 <= RandomReplacement().apply(0, 8, rng) <= 0xFF


class TestDoubleBitFlip:
    def test_flips_two_bits(self):
        corrupted = DoubleBitFlip(0, 15).apply(0, 16, RNG)
        assert corrupted == 0x8001

    def test_same_bits_rejected(self):
        with pytest.raises(ValueError):
            DoubleBitFlip(3, 3)

    def test_width_check(self):
        with pytest.raises(ValueError):
            DoubleBitFlip(0, 12).apply(0, 8, RNG)


class TestStuckAt:
    def test_stuck_at_zero(self):
        assert StuckAtZero(3).apply(0xFFFF, 16, RNG) == 0xFFF7
        assert StuckAtZero(3).apply(0, 16, RNG) == 0  # may be a no-op

    def test_stuck_at_one(self):
        assert StuckAtOne(3).apply(0, 16, RNG) == 8
        assert StuckAtOne(3).apply(0xFFFF, 16, RNG) == 0xFFFF

    def test_width_checks(self):
        with pytest.raises(ValueError):
            StuckAtZero(9).apply(0, 8, RNG)
        with pytest.raises(ValueError):
            StuckAtOne(9).apply(0, 8, RNG)


class TestOffset:
    def test_positive_offset(self):
        assert Offset(10).apply(100, 16, RNG) == 110

    def test_wraps(self):
        assert Offset(2).apply(0xFFFF, 16, RNG) == 1

    def test_negative_offset_wraps(self):
        assert Offset(-5).apply(3, 16, RNG) == 0xFFFE

    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError):
            Offset(0)

    def test_name_signed(self):
        assert Offset(-5).name == "offset[-5]"
        assert Offset(5).name == "offset[+5]"
