"""The live dashboard: reducer parity, sink/server plumbing, CLI.

The core contract is exact parity between the pure event-stream
reducer and the post-hoc analyses: replaying a recorded
``events.jsonl`` through :class:`CampaignStateReducer` must reproduce
``estimate_matrix(result).to_jsonable()``, the
:func:`~repro.injection.latency.lifetime_statistics` fields and the
:class:`~repro.injection.outcomes.CampaignResult` counters — for
serial and parallel campaigns, under the reference and (when numpy is
available) batched backends.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.injection.latency import lifetime_statistics
from repro.obs import CampaignObserver
from repro.obs.dash import (
    CampaignStateReducer,
    DashboardServer,
    DashboardSink,
    tail_lines,
    validate_snapshot,
)
from repro.obs.events import RingBufferSink, read_events
from repro.obs.summary import render_summary, summarize_events
from repro.simulation.backend import available_backends

from tests.conftest import build_toy_model, toy_factory

TOY_CONFIG = CampaignConfig(
    duration_ms=48,
    injection_times_ms=(16, 32),
    error_models=tuple(bit_flip_models(4)),
    seed=7,
)

BACKENDS = [
    pytest.param(name, marks=())
    if name == "reference"
    else pytest.param(
        name,
        marks=pytest.mark.skipif(
            name not in available_backends(), reason=f"{name} unavailable"
        ),
    )
    for name in ("reference", "batched")
]


def _run_recorded(tmp_path, *, workers=1, backend="reference"):
    """Run the toy campaign with a recording observer; return
    ``(result, events_path)``."""
    events_path = tmp_path / "events.jsonl"
    system = build_toy_model()
    config = dataclasses.replace(TOY_CONFIG, backend=backend)
    observer = CampaignObserver.to_files(
        events_path=str(events_path), with_metrics=True, system=system
    )
    campaign = InjectionCampaign(
        system, toy_factory, {"ramp": None}, config, observer=observer
    )
    if workers > 1:
        result = campaign.execute_parallel(max_workers=workers)
    else:
        result = campaign.execute()
    observer.close()
    return result, events_path


def _assert_parity(result, events_path):
    """The full reducer-vs-post-hoc parity contract on one stream."""
    reducer = CampaignStateReducer.from_events_file(events_path)
    # Matrix: exactly estimate_matrix, same order, same counts.
    assert reducer.matrix_jsonable() == estimate_matrix(result).to_jsonable()
    # Lifetimes: field-for-field the latency module's statistics.
    expected = {
        key: dataclasses.asdict(value)
        for key, value in lifetime_statistics(result).items()
    }
    assert reducer.lifetime_statistics() == expected
    # Run counters: the CampaignResult's view.
    snapshot = reducer.snapshot()
    counters = snapshot["counters"]
    assert counters["n_runs"] == len(result)
    assert counters["n_fired"] == result.n_fired()
    assert counters["n_reconverged"] == result.n_reconverged()
    assert counters["reconverged_fraction"] == pytest.approx(
        result.reconverged_fraction()
    )
    assert (
        counters["frames_fast_forwarded"]
        == result.frames_fast_forwarded_total()
    )
    assert snapshot["state"] == "finished"
    assert snapshot["progress"]["done"] == snapshot["progress"]["total"]
    validate_snapshot(snapshot)
    return reducer


class TestReducerParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serial(self, tmp_path, backend):
        result, events_path = _run_recorded(tmp_path, backend=backend)
        _assert_parity(result, events_path)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel(self, tmp_path, backend):
        result, events_path = _run_recorded(
            tmp_path, workers=2, backend=backend
        )
        _assert_parity(result, events_path)

    def test_arrestment(self, tmp_path):
        from repro.arrestment import (
            build_arrestment_model,
            build_arrestment_run,
            reduced_test_cases,
        )

        events_path = tmp_path / "events.jsonl"
        system = build_arrestment_model()
        config = CampaignConfig(
            duration_ms=5600,
            injection_times_ms=(500, 5000),
            error_models=tuple(bit_flip_models(2)),
            seed=2001,
        )
        observer = CampaignObserver.to_files(
            events_path=str(events_path), with_metrics=True, system=system
        )
        campaign = InjectionCampaign(
            system,
            build_arrestment_run,
            reduced_test_cases(1),
            config,
            observer=observer,
        )
        result = campaign.execute()
        observer.close()
        _assert_parity(result, events_path)

    def test_generated_system(self, tmp_path):
        from repro.verify import default_campaign, generate_system

        generated = generate_system(11)
        config = default_campaign(generated).to_config(
            reuse=True, fast_forward=True
        )
        events_path = tmp_path / "events.jsonl"
        observer = CampaignObserver.to_files(
            events_path=str(events_path),
            with_metrics=True,
            system=generated.system,
        )
        campaign = InjectionCampaign(
            generated.system,
            generated.run_factory,
            {"gen": None},
            config,
            observer=observer,
        )
        result = campaign.execute()
        observer.close()
        _assert_parity(result, events_path)

    def test_lifetime_histogram_matches_metrics(self, tmp_path):
        """The reducer's lifetime buckets mirror ``ff.error_lifetime.ms``."""
        _result, events_path = _run_recorded(tmp_path)
        reducer = CampaignStateReducer.from_events_file(events_path)
        snapshot = reducer.snapshot()
        recorded = reducer.metrics.get("ff.error_lifetime.ms")
        if recorded is None:
            pytest.skip("no lifetimes observed")
        assert snapshot["lifetimes"]["buckets"] == list(recorded["buckets"])
        assert snapshot["lifetimes"]["counts"] == list(recorded["counts"])


class TestReducerRobustness:
    def test_truncated_stream_snapshot(self, tmp_path):
        """A stream cut mid-line still yields a valid running snapshot."""
        _result, events_path = _run_recorded(tmp_path)
        lines = events_path.read_text(encoding="utf-8").splitlines()
        # Drop CampaignFinished, tear the last surviving line in half.
        kept, torn = lines[: len(lines) // 2], lines[len(lines) // 2]
        reducer = CampaignStateReducer()
        for line in kept:
            assert reducer.feed_line(line) is not None
        assert reducer.feed_line(torn[: len(torn) // 2]) is None
        assert reducer.skipped_lines == 1
        snapshot = reducer.snapshot()
        assert snapshot["state"] == "running"
        assert snapshot["stream"]["skipped_lines"] == 1
        validate_snapshot(snapshot)

    def test_blank_and_garbage_lines(self):
        reducer = CampaignStateReducer()
        assert reducer.feed_line("") is None
        assert reducer.feed_line("   ") is None
        assert reducer.feed_line("{not json") is None
        assert reducer.feed_line('{"v": 99, "nope": true}') is None
        assert reducer.skipped_lines == 2
        validate_snapshot(reducer.snapshot())

    def test_empty_reducer_snapshot(self):
        snapshot = CampaignStateReducer().snapshot()
        assert snapshot["state"] == "empty"
        assert snapshot["matrix"]["entries"] == []
        validate_snapshot(snapshot)

    def test_mid_stream_snapshots_stay_valid(self, tmp_path):
        """Every prefix of a real stream validates (the live case)."""
        _result, events_path = _run_recorded(tmp_path)
        reducer = CampaignStateReducer()
        for parsed in read_events(events_path):
            reducer.feed_parsed(parsed)
            validate_snapshot(reducer.snapshot())
        assert reducer.snapshot()["state"] == "finished"


class TestDashboardSink:
    def test_subscribe_replays_then_tails(self, tmp_path):
        _result, events_path = _run_recorded(tmp_path)
        records = [
            json.loads(line)
            for line in events_path.read_text(encoding="utf-8").splitlines()
        ]
        sink = DashboardSink()
        for record in records[:5]:
            sink.emit(record)
        history, live = sink.subscribe()
        assert len(history) == 5
        for record in records[5:]:
            sink.emit(record)
        sink.close()
        tailed = []
        while True:
            item = live.get(timeout=1)
            if item is None:
                break
            tailed.append(item)
        assert history + tailed == records
        validate_snapshot(sink.snapshot())

    def test_emit_line_counts_damage(self):
        sink = DashboardSink()
        sink.emit_line("{torn")
        sink.emit_line('"a bare string"')
        sink.emit_line("")
        assert sink.snapshot()["stream"]["skipped_lines"] == 2

    def test_subscribe_after_close_ends_immediately(self):
        sink = DashboardSink()
        sink.close()
        history, live = sink.subscribe()
        assert history == []
        assert live.get(timeout=1) is None

    def test_malformed_record_does_not_raise(self):
        sink = DashboardSink()
        sink.emit({"v": 1, "seq": 0, "ts": 0.0, "type": "NoSuchEvent", "data": {}})
        assert sink.snapshot()["stream"]["skipped_lines"] == 1


class TestDashboardServer:
    @pytest.fixture()
    def served(self, tmp_path):
        _result, events_path = _run_recorded(tmp_path)
        sink = DashboardSink()
        for line in tail_lines(events_path):
            sink.emit_line(line)
        sink.close()
        with DashboardServer(sink) as server:
            yield server

    def test_snapshot_endpoint(self, served):
        raw = urllib.request.urlopen(served.url + "/api/snapshot").read()
        snapshot = json.loads(raw)
        validate_snapshot(snapshot)
        assert snapshot["state"] == "finished"
        assert snapshot["matrix"]["entries"]

    def test_index_page(self, served):
        html = urllib.request.urlopen(served.url + "/").read().decode("utf-8")
        assert "/api/snapshot" in html and "/api/events" in html
        assert "<title>" in html

    def test_unknown_path_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(served.url + "/nope")
        assert excinfo.value.code == 404

    def test_sse_replays_whole_stream_then_ends(self, served, tmp_path):
        response = urllib.request.urlopen(
            served.url + "/api/events", timeout=10
        )
        n_data = 0
        ended = False
        for raw in response:
            if raw.startswith(b"event: end"):
                # the end frame's own data line follows; stop counting
                ended = True
                break
            if raw.startswith(b"data:"):
                n_data += 1
        events_file = tmp_path / "events.jsonl"
        with open(events_file, encoding="utf-8") as handle:
            n_recorded = sum(1 for _ in handle)
        assert ended
        assert n_data == n_recorded

    def test_live_subscriber_sees_new_events(self, tmp_path):
        _result, events_path = _run_recorded(tmp_path)
        records = [
            json.loads(line)
            for line in events_path.read_text(encoding="utf-8").splitlines()
        ]
        sink = DashboardSink()
        with DashboardServer(sink) as server:
            got = []

            def consume():
                response = urllib.request.urlopen(
                    server.url + "/api/events", timeout=10
                )
                for raw in response:
                    if raw.startswith(b"event: end"):
                        # its own data line follows; stop before it
                        break
                    if raw.startswith(b"data:"):
                        got.append(json.loads(raw[len(b"data:"):]))

            consumer = threading.Thread(target=consume)
            consumer.start()
            for record in records:
                sink.emit(record)
            sink.close()
            consumer.join(timeout=10)
            assert not consumer.is_alive()
        assert got == records


class TestRingBufferDrops:
    def test_dropped_counter(self):
        sink = RingBufferSink(capacity=3)
        for seq in range(8):
            sink.emit({"seq": seq})
        assert sink.dropped == 5
        assert len(sink.records) == 3

    def test_unbounded_never_drops(self):
        sink = RingBufferSink(capacity=None)
        for seq in range(2000):
            sink.emit({"seq": seq})
        assert sink.dropped == 0

    def test_observer_surfaces_drops_in_metrics(self):
        from repro.obs.events import EventStream
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.propagation import PropagationObservations

        system = build_toy_model()
        observer = CampaignObserver(
            events=EventStream(RingBufferSink(capacity=4)),
            metrics=MetricsRegistry(),
            propagation=PropagationObservations(system),
        )
        campaign = InjectionCampaign(
            system, toy_factory, {"ramp": None}, TOY_CONFIG, observer=observer
        )
        campaign.execute()
        observer.close()
        assert observer.dropped_events() > 0
        dropped = observer.metrics.to_dict()["events.dropped"]["value"]
        # the CampaignFinished emit itself may evict one more record
        # after the counter snapshot was embedded
        assert 0 < dropped <= observer.dropped_events()

    def test_summary_warns_about_drops(self, tmp_path):
        _result, events_path = _run_recorded(tmp_path)
        summary = summarize_events(read_events(events_path))
        summary.metrics["events.dropped"] = {"type": "counter", "value": 7}
        text = render_summary(summary)
        assert "WARNING: 7 event(s) were dropped" in text
        summary.metrics.pop("events.dropped")
        assert "WARNING" not in render_summary(summary)


class TestTailer:
    def test_reads_complete_and_partial_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("one\ntwo\npartial", encoding="utf-8")
        assert list(tail_lines(path)) == ["one", "two", "partial"]

    def test_follow_picks_up_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("first\n", encoding="utf-8")
        got = []
        done = threading.Event()

        def consume():
            for line in tail_lines(
                path, follow=True, poll_interval_s=0.01, stop=done.is_set
            ):
                got.append(line)
                if line == "last":
                    done.set()

        consumer = threading.Thread(target=consume)
        consumer.start()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("second\nlast\n")
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert got == ["first", "second", "last"]


class TestCli:
    def test_dash_replay_and_exit(self, tmp_path, capsys):
        from repro.cli import main

        _result, events_path = _run_recorded(tmp_path)
        rc = main(
            [
                "dash",
                "--events",
                str(events_path),
                "--address",
                "127.0.0.1:0",
                "--linger",
                "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "served" in out and "event(s)" in out

    def test_dash_missing_file(self, tmp_path):
        from repro.cli import main

        rc = main(["dash", "--events", str(tmp_path / "nope.jsonl"),
                   "--address", "127.0.0.1:0", "--linger", "0"])
        assert rc == 2

    def test_dash_bad_address(self, tmp_path):
        from repro.cli import main

        _result, events_path = _run_recorded(tmp_path)
        rc = main(["dash", "--events", str(events_path),
                   "--address", "not-an-address", "--linger", "0"])
        assert rc == 2

    def test_obs_tail_filters_types(self, tmp_path, capsys):
        from repro.cli import main

        _result, events_path = _run_recorded(tmp_path)
        rc = main(
            [
                "obs",
                "tail",
                str(events_path),
                "--type",
                "CampaignStarted,CampaignFinished",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 2
        assert "campaign started" in lines[0]
        assert "campaign finished" in lines[1]

    def test_campaign_dash_flag(self, tmp_path, capsys):
        from repro.cli import main

        events_path = tmp_path / "events.jsonl"
        rc = main(
            [
                "campaign",
                "--cases", "1",
                "--times", "2",
                "--bits", "1",
                "--duration", "5600",
                "--events", str(events_path),
                "--dash", "127.0.0.1:0",
                "--dash-linger", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dashboard: http://127.0.0.1:" in out
        # The recorded stream replays into a finished snapshot.
        reducer = CampaignStateReducer.from_events_file(events_path)
        assert reducer.snapshot()["state"] == "finished"

    def test_parse_dash_address(self):
        from repro.cli import _parse_dash_address

        assert _parse_dash_address("127.0.0.1:8765") == ("127.0.0.1", 8765)
        assert _parse_dash_address(":9000") == ("127.0.0.1", 9000)
        assert _parse_dash_address("8765") == ("127.0.0.1", 8765)
        assert _parse_dash_address("0.0.0.0:0") == ("0.0.0.0", 0)
        assert _parse_dash_address("no-port") is None
        assert _parse_dash_address("host:badport") is None
        assert _parse_dash_address("host:99999") is None
