"""Unit tests for the executable-assertion EDM package."""

from __future__ import annotations

import pytest

from repro.edm.detectors import (
    ConstancyCheck,
    DeltaCheck,
    MonotonicCheck,
    RangeCheck,
    calibrate_delta,
    calibrate_range,
)
from repro.edm.evaluation import effectiveness_score, evaluate_detectors
from repro.injection.campaign import CampaignConfig
from repro.injection.error_models import BitFlip, bit_flip_models
from repro.model.errors import CampaignError

from tests.conftest import build_toy_model, build_toy_run


class TestRangeCheck:
    def test_fires_outside_range(self):
        check = RangeCheck("s", 10, 20)
        assert check.first_detection([12, 15, 25, 12]) == 2
        assert check.first_detection([12, 5]) == 1

    def test_silent_inside_range(self):
        check = RangeCheck("s", 10, 20)
        assert check.first_detection([10, 20, 15]) is None
        assert not check.fires_on([10, 20])

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            RangeCheck("s", 20, 10)

    def test_name(self):
        assert RangeCheck("s", 1, 2).name == "range[s:1..2]"


class TestDeltaCheck:
    def test_fires_on_jump(self):
        check = DeltaCheck("s", 5)
        assert check.first_detection([0, 3, 9, 10]) == 2

    def test_silent_on_smooth(self):
        assert DeltaCheck("s", 5).first_detection([0, 5, 10, 15]) is None

    def test_first_sample_never_fires(self):
        assert DeltaCheck("s", 0).first_detection([1000]) is None

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            DeltaCheck("s", -1)


class TestConstancyCheck:
    def test_fires_after_freeze(self):
        check = ConstancyCheck("s", max_constant_ms=3)
        assert check.first_detection([1, 2, 2, 2, 2]) == 4

    def test_silent_on_changing(self):
        check = ConstancyCheck("s", max_constant_ms=2)
        assert check.first_detection([1, 1, 2, 2, 3, 3]) is None

    def test_run_resets_on_change(self):
        check = ConstancyCheck("s", max_constant_ms=3)
        assert check.first_detection([5, 5, 5, 6, 6, 6, 7]) is None

    def test_empty(self):
        assert ConstancyCheck("s", 1).first_detection([]) is None

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            ConstancyCheck("s", 0)


class TestMonotonicCheck:
    def test_fires_on_decrease(self):
        assert MonotonicCheck("s").first_detection([1, 2, 3, 2]) == 3

    def test_silent_on_nondecreasing(self):
        assert MonotonicCheck("s").first_detection([1, 1, 2, 3]) is None

    def test_wrap_tolerated(self):
        check = MonotonicCheck("s", allow_wrap=True)
        assert check.first_detection([65000, 65500, 10, 50]) is None

    def test_wrap_rejected_when_disallowed(self):
        check = MonotonicCheck("s", allow_wrap=False)
        assert check.first_detection([65000, 10]) == 1


class TestCalibration:
    def test_calibrate_range_adds_margin(self):
        low, high = calibrate_range([100, 200], margin_fraction=0.1)
        assert low == 90 and high == 210

    def test_calibrate_range_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_range([])

    def test_calibrate_delta(self):
        assert calibrate_delta([0, 10, 15], margin_factor=2.0) == 20

    def test_calibrate_delta_needs_two(self):
        with pytest.raises(ValueError):
            calibrate_delta([1])

    def test_calibrated_assertions_silent_on_source(self):
        samples = [t * 7 % 300 for t in range(100)]
        low, high = calibrate_range(samples)
        assert RangeCheck("s", low, high).first_detection(samples) is None
        bound = calibrate_delta(samples)
        assert DeltaCheck("s", bound).first_detection(samples) is None


class TestEvaluation:
    def config(self) -> CampaignConfig:
        return CampaignConfig(
            duration_ms=40,
            injection_times_ms=(10, 25),
            error_models=tuple(bit_flip_models(16)),
        )

    def test_perfect_detector_on_hot_signal(self):
        """A range check on `out` catches exactly the high-byte flips
        that propagate through FILT (low-byte flips never corrupt any
        trace, so they are not part of the denominator)."""
        # Golden out stays below 0xFF over 40 ms (ramp step 3 -> 120).
        detector = RangeCheck("out", 0, 0xFF)
        evaluation = evaluate_detectors(
            build_toy_model(),
            lambda case: build_toy_run(),
            {"c": None},
            self.config(),
            [detector],
        )
        stats = evaluation.by_name()[detector.name]
        assert not stats.has_false_alarms
        # Detectable = 48: FILT high-byte flips (8 bits x 2 times) plus
        # every AMP flip (identity module, 16 bits x 2 times).
        assert stats.n_detectable == evaluation.n_detectable == 48
        # Caught: every flip of bits 8-15 reaching `out` (32 of 48);
        # AMP's low-byte corruption stays under the bound.
        assert stats.n_detected == 32
        assert stats.coverage == pytest.approx(2 / 3)
        assert stats.mean_latency_ms == 0.0

    def test_false_alarm_detection(self):
        noisy = RangeCheck("src", 0, 10)  # the ramp exceeds 10 quickly
        evaluation = evaluate_detectors(
            build_toy_model(),
            lambda case: build_toy_run(),
            {"c": None},
            self.config(),
            [noisy],
        )
        stats = evaluation.by_name()[noisy.name]
        assert stats.has_false_alarms
        assert stats.false_alarm_cases == ["c"]

    def test_detector_on_cold_signal_catches_nothing(self):
        """Injections at AMP never touch the stored `src` trace."""
        detector = DeltaCheck("src", 0xFFFF)
        evaluation = evaluate_detectors(
            build_toy_model(),
            lambda case: build_toy_run(),
            {"c": None},
            CampaignConfig(
                duration_ms=40,
                injection_times_ms=(10,),
                error_models=(BitFlip(15),),
                targets=(("AMP", "filt"),),
            ),
            [detector],
        )
        stats = evaluation.by_name()[detector.name]
        assert stats.coverage == 0.0

    def test_unknown_signal_rejected(self):
        with pytest.raises(CampaignError):
            evaluate_detectors(
                build_toy_model(),
                lambda case: build_toy_run(),
                {"c": None},
                self.config(),
                [RangeCheck("ghost", 0, 1)],
            )

    def test_no_detectors_rejected(self):
        with pytest.raises(CampaignError):
            evaluate_detectors(
                build_toy_model(),
                lambda case: build_toy_run(),
                {"c": None},
                self.config(),
                [],
            )

    def test_render(self):
        evaluation = evaluate_detectors(
            build_toy_model(),
            lambda case: build_toy_run(),
            {"c": None},
            self.config(),
            [RangeCheck("out", 0, 0x1000), DeltaCheck("filt", 0x2000)],
        )
        text = evaluation.render()
        assert "EDM evaluation" in text
        assert "Coverage" in text

    def test_effectiveness_score(self):
        from repro.edm.evaluation import DetectorStats

        good_detector_cold_signal = DetectorStats("d1", "InValue")
        good_detector_cold_signal.n_detectable = 10
        good_detector_cold_signal.n_detected = 9
        ok_detector_hot_signal = DetectorStats("d2", "SetValue")
        ok_detector_hot_signal.n_detectable = 10
        ok_detector_hot_signal.n_detected = 6
        # OB3: high exposure beats high raw coverage.
        assert effectiveness_score(
            ok_detector_hot_signal, signal_exposure=2.8
        ) > effectiveness_score(good_detector_cold_signal, signal_exposure=0.1)
