"""Unit tests for the static model linter (repro.lint).

Covers the diagnostics engine, every registered rule against a crafted
minimal topology, report filtering, the campaign lint gate and the
LintReported observability event.
"""

from __future__ import annotations

import pytest

from repro.arrestment.system import build_arrestment_model
from repro.core.permeability import PermeabilityMatrix
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
    lint_system,
    registered_rules,
)
from repro.model.builder import SystemBuilder
from repro.model.errors import CampaignError
from repro.model.examples import build_fig2_system, fig2_permeabilities
from repro.obs import CampaignObserver
from repro.obs.events import LintReported, decode_event, encode_event

from tests.conftest import build_toy_model, build_toy_run


# ---------------------------------------------------------------------------
# Diagnostics engine
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_severity_ordering_and_labels(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.ERROR.label == "error"
        assert Severity.from_label("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.from_label("fatal")

    def test_location_fully_qualified(self):
        loc = SourceLocation(module="CALC", signal="i", port="input")
        assert loc.fully_qualified() == "module:CALC/signal:i/port:input"
        assert SourceLocation().fully_qualified() == "system"
        assert SourceLocation(signal="x").to_dict() == {"signal": "x"}

    def test_diagnostic_render_includes_hint(self):
        diag = Diagnostic(
            code="R001",
            severity=Severity.ERROR,
            message="boom",
            location=SourceLocation(signal="x"),
            hint="fix it",
        )
        text = diag.render()
        assert "R001" in text and "boom" in text and "hint: fix it" in text

    def test_report_sorts_errors_first(self):
        report = LintReport(
            "s",
            [
                Diagnostic("R009", Severity.WARNING, "w"),
                Diagnostic("R001", Severity.ERROR, "e"),
            ],
        )
        assert [d.code for d in report] == ["R001", "R009"]
        assert report.has_errors
        assert report.worst() is Severity.ERROR
        assert report.codes() == ("R001", "R009")

    def test_report_filter_select_and_ignore(self):
        report = LintReport(
            "s",
            [
                Diagnostic("R001", Severity.ERROR, "e"),
                Diagnostic("R005", Severity.WARNING, "w"),
                Diagnostic("R009", Severity.WARNING, "w"),
            ],
        )
        assert report.filter(select=["R00"]).codes() == ("R001", "R005", "R009")
        assert report.filter(ignore=["R005"]).codes() == ("R001", "R009")
        assert report.filter(select=["R005", "R009"], ignore=["R009"]).codes() == (
            "R005",
        )

    def test_fails_at_threshold(self):
        warn_only = LintReport("s", [Diagnostic("R005", Severity.WARNING, "w")])
        assert not warn_only.fails_at(Severity.ERROR)
        assert warn_only.fails_at(Severity.WARNING)
        assert not LintReport("s").fails_at(Severity.INFO)

    def test_json_output_shape(self):
        report = LintReport("s", [Diagnostic("R001", Severity.ERROR, "e")])
        payload = report.to_jsonable()
        assert payload["system"] == "s"
        assert payload["summary"]["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "R001"


# ---------------------------------------------------------------------------
# Reference systems
# ---------------------------------------------------------------------------


class TestReferenceSystems:
    def test_registry_is_complete(self):
        codes = [rule.code for rule in registered_rules()]
        assert codes == sorted(codes)
        assert codes == [f"R{n:03d}" for n in range(1, 15)]

    def test_arrestment_is_clean(self):
        report = lint_system(build_arrestment_model())
        assert len(report) == 0

    def test_fig2_is_clean(self):
        report = lint_system(build_fig2_system())
        assert len(report) == 0

    def test_fig2_matrix_flags_only_the_dead_pair(self):
        # The paper's Fig. 2 permeabilities set P(E: ext_e -> sys_out)
        # to 0.0 and E has a single output, so exactly one all-zero row
        # (and its mirror column) is expected — warnings, not errors.
        system = build_fig2_system()
        matrix = PermeabilityMatrix.from_dict(system, fig2_permeabilities())
        report = lint_system(system, matrix)
        assert not report.has_errors
        assert set(report.codes()) <= {"R009", "R010"}
        assert any(d.location.module == "E" for d in report)


# ---------------------------------------------------------------------------
# Individual rules
# ---------------------------------------------------------------------------


class TestStructuralRules:
    def test_r001_dangling_produced_signal(self):
        builder = SystemBuilder("b")
        builder.add_module("M", inputs=["ext"], outputs=["used", "orphan"])
        builder.add_module("N", inputs=["used"], outputs=["out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        report = lint_system(builder.build(validate=False))
        flagged = report.by_code("R001")
        assert [d.location.signal for d in flagged] == ["orphan"]
        assert flagged[0].severity is Severity.ERROR

    def test_r002_consumed_but_never_produced(self):
        builder = SystemBuilder("b")
        builder.add_module("M", inputs=["ghost"], outputs=["out"])
        builder.mark_system_output("out")
        report = lint_system(builder.build(validate=False))
        flagged = report.by_code("R002")
        assert [d.location.signal for d in flagged] == ["ghost"]

    def test_r003_boundary_problems(self):
        builder = SystemBuilder("b")
        builder.add_module("M", inputs=["ext"], outputs=["out"])
        builder.mark_system_input("ext", "out")  # 'out' produced internally
        builder.mark_system_output("out", "uot")  # 'uot' unknown
        report = lint_system(builder.build(validate=False))
        messages = " | ".join(d.message for d in report.by_code("R003"))
        assert "produced internally" in messages
        assert "'uot'" in messages
        # the unknown name gets a did-you-mean hint from the shared matcher
        hints = " | ".join(d.hint or "" for d in report.by_code("R003"))
        assert "did you mean 'out'?" in hints

    def test_r004_island_modules(self):
        # A two-module loop island is unreachable from the boundary.
        builder = SystemBuilder("b")
        builder.add_module("SRC", inputs=["ext"], outputs=["out"])
        builder.add_module("P", inputs=["q_out"], outputs=["p_out"])
        builder.add_module("Q", inputs=["p_out"], outputs=["q_out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        report = lint_system(builder.build(validate=False))
        assert {d.location.module for d in report.by_code("R004")} == {"P", "Q"}

    def test_r004_exempts_autonomous_clock_pattern(self):
        # The paper's CLOCK is driven purely by its own feedback signal;
        # it must not be flagged, and neither must its consumers.
        builder = SystemBuilder("b")
        builder.add_module("CLOCK", inputs=["slot"], outputs=["slot", "tick"])
        builder.add_module("USE", inputs=["tick"], outputs=["out"])
        builder.mark_system_output("out")
        report = lint_system(builder.build())
        assert not report.by_code("R004")

    def test_r005_dead_sink_output(self):
        builder = SystemBuilder("b")
        builder.add_module("M", inputs=["ext"], outputs=["mid"])
        builder.add_module("LOG", inputs=["mid"], outputs=["log_buf"])
        builder.add_module("N", inputs=["mid"], outputs=["out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out", "log_buf")
        clean = lint_system(builder.build())
        assert not clean.by_code("R005")
        # Un-export the log buffer: now it is a dead sink.
        builder2 = SystemBuilder("b2")
        builder2.add_module("M", inputs=["ext"], outputs=["mid"])
        builder2.add_module("LOG", inputs=["mid"], outputs=["log_buf"])
        builder2.add_module("N", inputs=["mid"], outputs=["out"])
        builder2.mark_system_input("ext")
        builder2.mark_system_output("out")
        report = lint_system(builder2.build(validate=False))
        flagged = report.by_code("R005")
        assert [(d.location.module, d.location.signal) for d in flagged] == [
            ("LOG", "log_buf")
        ]
        assert "X^S" in flagged[0].message

    def test_r006_r007_cross_module_cycle(self):
        builder = SystemBuilder("b")
        builder.add_module("M1", inputs=["ext", "s2"], outputs=["s1"])
        builder.add_module("M2", inputs=["s1"], outputs=["s2", "out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        report = lint_system(builder.build())
        cycles = report.by_code("R006")
        assert len(cycles) == 1
        assert "M1" in cycles[0].message and "M2" in cycles[0].message
        assert {d.location.module for d in report.by_code("R007")} == {"M1", "M2"}

    def test_r006_not_fired_for_self_feedback(self):
        builder = SystemBuilder("b")
        builder.add_module("M", inputs=["ext", "fb"], outputs=["fb", "out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        report = lint_system(builder.build())
        assert not report.by_code("R006")
        assert not report.by_code("R007")

    def test_r007_spares_declared_feedback_on_cycle(self):
        # M1 participates in a wider cycle but also declares explicit
        # self-feedback, so only M2 is reported as unmarked.
        builder = SystemBuilder("b")
        builder.add_module("M1", inputs=["ext", "s2", "fb"], outputs=["s1", "fb"])
        builder.add_module("M2", inputs=["s1"], outputs=["s2", "out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        report = lint_system(builder.build())
        assert report.by_code("R006")
        assert {d.location.module for d in report.by_code("R007")} == {"M2"}

    def test_r008_width_mismatch(self):
        builder = SystemBuilder("b")
        builder.add_signal("wide", width=32)
        builder.add_module("M", inputs=["wide"], outputs=["narrow"])
        builder.mark_system_input("wide")
        builder.mark_system_output("narrow")
        report = lint_system(builder.build())
        flagged = report.by_code("R008")
        assert len(flagged) == 1
        assert "narrows" in flagged[0].message


class TestMatrixRules:
    def _chain(self):
        builder = SystemBuilder("chain")
        builder.add_module("A", inputs=["ext"], outputs=["mid"])
        builder.add_module("B", inputs=["mid"], outputs=["out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        return builder.build()

    def test_rules_skipped_without_matrix(self):
        system = self._chain()
        assert not lint_system(system).codes()

    def test_r009_r010_zero_row_and_column(self):
        system = self._chain()
        matrix = PermeabilityMatrix.uniform(system, 0.5)
        matrix.set("A", "ext", "mid", 0.0)
        report = lint_system(system, matrix)
        # A single-input single-output module: the zero pair is both an
        # all-zero row (ext never permeates) and an all-zero column.
        assert report.by_code("R009")
        assert report.by_code("R010")
        assert not report.has_errors

    def test_incomplete_rows_are_not_judged(self):
        system = self._chain()
        matrix = PermeabilityMatrix(system)  # nothing set
        report = lint_system(system, matrix)
        assert not report.by_code("R009")
        assert not report.by_code("R010")


class TestPlacementRules:
    def test_r011_downstream_detector_shadowed(self):
        system = build_toy_model()  # src -> FILT -> filt -> AMP -> out
        report = lint_system(system, detectors=["src", "out"])
        flagged = report.by_code("R011")
        assert [d.location.signal for d in flagged] == ["out"]
        assert "'src'" in flagged[0].message

    def test_r011_parallel_branches_not_shadowed(self):
        builder = SystemBuilder("b")
        builder.add_module("S", inputs=["ext"], outputs=["left", "right"])
        builder.add_module("L", inputs=["left"], outputs=["l_out"])
        builder.add_module("R", inputs=["right"], outputs=["r_out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("l_out", "r_out")
        report = lint_system(builder.build(), detectors=["l_out", "r_out"])
        assert not report.by_code("R011")

    def test_r012_unknown_target_pair(self):
        system = build_toy_model()
        report = lint_system(
            system, targets=[("FILT", "src"), ("FILT", "srx"), ("FLIT", "src")]
        )
        flagged = report.by_code("R012")
        assert len(flagged) == 2
        assert flagged[0].severity is Severity.ERROR
        hints = " | ".join(d.hint or "" for d in flagged)
        assert "did you mean 'src'?" in hints
        assert "did you mean 'FILT'?" in hints


# ---------------------------------------------------------------------------
# Campaign gate and observability
# ---------------------------------------------------------------------------


def _tiny_config(**overrides):
    defaults = dict(
        duration_ms=30,
        injection_times_ms=(5,),
        error_models=tuple(bit_flip_models(1)),
        seed=1,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _broken_system():
    builder = SystemBuilder("broken")
    builder.add_module("FILT", inputs=["src"], outputs=["filt", "orphan"])
    builder.add_module("AMP", inputs=["filt"], outputs=["out"])
    builder.mark_system_input("src")
    builder.mark_system_output("out")
    return builder.build(validate=False)


class TestCampaignGate:
    def test_campaign_refuses_on_error_diagnostics(self):
        calls = []

        def factory(case):
            calls.append(case)
            return build_toy_run()

        campaign = InjectionCampaign(
            _broken_system(), factory, [None], _tiny_config()
        )
        with pytest.raises(CampaignError, match="R001"):
            campaign.execute()
        assert calls == []  # aborted before any Golden Run

    def test_no_lint_bypasses_the_gate(self):
        sentinel = RuntimeError("factory reached")

        def factory(case):
            raise sentinel

        campaign = InjectionCampaign(
            _broken_system(), factory, [None], _tiny_config(lint=False)
        )
        with pytest.raises(RuntimeError, match="factory reached"):
            campaign.execute()

    def test_clean_campaign_emits_lint_event(self):
        system = build_toy_model()
        observer = CampaignObserver.to_files(events_path=None, system=system)
        campaign = InjectionCampaign(
            system,
            lambda case: build_toy_run(),
            [None],
            _tiny_config(),
            observer=observer,
        )
        result = campaign.execute()
        assert len(result) == campaign.total_runs()
        events = observer.events._sink.events()
        types = [parsed.type_name for parsed in events]
        assert types[0] == "CampaignStarted"
        assert types[1] == "BackendSelected"
        assert types[2] == "LintReported"
        lint_event = events[2].event
        assert lint_event.errors == 0
        assert lint_event.system == system.name

    def test_campaign_lint_method_reports_without_raising(self):
        campaign = InjectionCampaign(
            _broken_system(),
            lambda case: build_toy_run(),
            [None],
            _tiny_config(),
        )
        report = campaign.lint()
        assert report.has_errors
        assert "R001" in report.codes()


class TestLintReportedEvent:
    def test_round_trip_restores_tuples(self):
        event = LintReported(
            system="s",
            errors=1,
            warnings=2,
            info=0,
            codes=("R001", "R005"),
            diagnostics=({"code": "R001"}, {"code": "R005"}),
        )
        record = encode_event(event, seq=7, ts=1.5)
        import json

        parsed = decode_event(json.loads(json.dumps(record)))
        assert parsed.event == event
        assert isinstance(parsed.event.codes, tuple)
        assert isinstance(parsed.event.diagnostics, tuple)
