"""Adaptive campaigns end to end: exactness, determinism, interplay.

The contract under test (docs/ADAPTIVE.md): ``adaptive=True`` only
*selects* which grid coordinates to run — every executed outcome is
byte-identical to the exhaustive campaign's at the same coordinates,
``adaptive=False`` is byte-identical to the pre-adaptive engine under
every backend and execution path, and the controller composes with
static pruning (pruned arcs are never sampled) and the result store
(exhaustive rows satisfy adaptive requests; warm replay executes zero
runs).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip, bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.model.errors import CampaignError
from repro.verify.generators import generate_system

CASES = {"w0": None}

#: Baseline grid: 2 instants x 4 bits = 8 trials per (case, target).
BASE = dict(
    duration_ms=200,
    injection_times_ms=(30, 110),
    error_models=tuple(bit_flip_models(4)),
    seed=5,
    reuse_golden_prefix=True,
    fast_forward=True,
)

#: Wide enough that some targets retire early, narrow enough that a
#: fractional arc exhausts its pool — both stopping paths exercised.
ADAPTIVE = dict(adaptive=True, ci_width=0.2)


def _campaign(gen, observer=None, **overrides):
    config = CampaignConfig(**{**BASE, **overrides})
    return InjectionCampaign(
        gen.system, gen.run_factory, CASES, config, observer=observer
    )


def _outs(result):
    return [outcome.to_jsonable() for outcome in result]


def _coord(outcome):
    return (
        outcome.case_id,
        outcome.module,
        outcome.input_signal,
        outcome.scheduled_time_ms,
        outcome.error_model,
    )


def _rows(result):
    return [row.to_jsonable() for row in result.adaptive_rows()]


# ---------------------------------------------------------------------------
# adaptive=False is the pre-adaptive engine, byte for byte
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["reference", "batched"])
def test_adaptive_false_is_byte_identical_to_default(backend):
    gen = generate_system(11)
    baseline = _campaign(gen, backend=backend).execute()
    explicit = _campaign(gen, backend=backend, adaptive=False).execute()
    assert _outs(explicit) == _outs(baseline)
    assert explicit.adaptive_rows() == ()
    parallel = _campaign(gen, backend=backend, adaptive=False).execute_parallel(
        max_workers=2
    )
    assert _outs(parallel) == _outs(baseline)


# ---------------------------------------------------------------------------
# Adaptive runs: exact subsets, deterministic, path-independent
# ---------------------------------------------------------------------------


def test_adaptive_outcomes_are_exact_subset_of_exhaustive():
    gen = generate_system(11)
    exhaustive = {_coord(o): o.to_jsonable() for o in _campaign(gen).execute()}
    result = _campaign(gen, **ADAPTIVE).execute()
    assert 0 < len(result) <= len(exhaustive)
    for outcome in result:
        assert exhaustive[_coord(outcome)] == outcome.to_jsonable()
    rows = result.adaptive_rows()
    assert {(r.module, r.input_signal) for r in rows} == {
        (c[1], c[2]) for c in exhaustive
    }
    for row in rows:
        assert 1 <= row.n_trials <= row.n_grid
        assert row.reason in ("confidence", "cap", "exhausted")
    estimate_matrix(result, require_complete=True)


def test_adaptive_round_schedule_and_matrix_are_deterministic():
    gen = generate_system(7)
    first = _campaign(gen, **ADAPTIVE).execute()
    second = _campaign(gen, **ADAPTIVE).execute()
    assert _outs(first) == _outs(second)
    assert _rows(first) == _rows(second)
    assert (
        estimate_matrix(first, require_complete=True).to_jsonable()
        == estimate_matrix(second, require_complete=True).to_jsonable()
    )


def test_adaptive_seed_changes_the_sampled_schedule():
    # ci 0.3 retires well before the pool runs dry, so the per-target
    # shuffle (seeded by the master seed) shows up in the sampled set.
    gen = generate_system(7)
    first = _campaign(gen, adaptive=True, ci_width=0.3).execute()
    reseeded = _campaign(
        gen, adaptive=True, ci_width=0.3, seed=6
    ).execute()
    assert {_coord(o) for o in first} != {_coord(o) for o in reseeded}


def test_adaptive_parallel_and_batched_match_serial():
    gen = generate_system(11)
    serial = _campaign(gen, **ADAPTIVE).execute()
    parallel = _campaign(gen, **ADAPTIVE).execute_parallel(max_workers=2)
    batched = _campaign(gen, **ADAPTIVE, backend="batched").execute()
    assert _outs(parallel) == _outs(serial)
    assert _rows(parallel) == _rows(serial)
    assert _outs(batched) == _outs(serial)
    assert _rows(batched) == _rows(serial)


def test_max_trials_per_target_caps_the_sample():
    gen = generate_system(11)
    result = _campaign(
        gen, adaptive=True, ci_width=0.01, max_trials_per_target=3
    ).execute()
    for row in result.adaptive_rows():
        assert row.n_trials == 3
        assert row.reason == "cap"


def test_uniform_policy_runs_and_stays_deterministic():
    gen = generate_system(11)
    first = _campaign(gen, **ADAPTIVE, budget_policy="uniform").execute()
    second = _campaign(gen, **ADAPTIVE, budget_policy="uniform").execute()
    assert _outs(first) == _outs(second)
    estimate_matrix(first, require_complete=True)


# ---------------------------------------------------------------------------
# Interplay with static pruning and the result store
# ---------------------------------------------------------------------------


def test_adaptive_never_samples_statically_pruned_arcs():
    gen = generate_system(0)  # seed 0: 3 prunable targets at bit 0
    models = (BitFlip(0),)
    pruned_config = dict(
        error_models=models, static_prune=True, adaptive=True, ci_width=0.2
    )
    result = _campaign(gen, **pruned_config).execute()
    pruned = set(result.pruned_targets())
    assert pruned, "seed 0 should have prunable targets"
    sampled = {(o.module, o.input_signal) for o in result}
    assert not pruned & sampled
    retired = {(r.module, r.input_signal) for r in result.adaptive_rows()}
    assert not pruned & retired
    # Pruned arcs are exact zeros in the matrix, same as exhaustive.
    exhaustive = _campaign(
        gen, error_models=models, static_prune=True
    ).execute()
    pruned_arcs = [
        key
        for key, est in estimate_matrix(
            result, require_complete=True
        ).items()
        if (key[0], key[1]) in pruned
    ]
    assert pruned_arcs
    exhaustive_matrix = estimate_matrix(exhaustive, require_complete=True)
    adaptive_matrix = estimate_matrix(result, require_complete=True)
    for key in pruned_arcs:
        assert adaptive_matrix.get(*key) == exhaustive_matrix.get(*key) == 0.0


def test_warm_store_replays_adaptive_campaign_without_executing(tmp_path):
    gen = generate_system(11)
    cold = _campaign(gen, **ADAPTIVE, store=str(tmp_path))
    cold_result = cold.execute()
    cold_stats = cold.last_store_stats
    assert cold_stats.hits == 0
    assert cold_stats.runs_executed == len(cold_result)
    warm = _campaign(gen, **ADAPTIVE, store=str(tmp_path))
    warm_result = warm.execute()
    warm_stats = warm.last_store_stats
    assert warm_stats.runs_executed == 0 and warm_stats.misses == 0
    assert warm_stats.runs_reused == len(cold_result)
    assert _outs(warm_result) == _outs(cold_result)
    assert _rows(warm_result) == _rows(cold_result)


def test_exhaustive_store_rows_satisfy_adaptive_requests(tmp_path):
    gen = generate_system(11)
    exhaustive = _campaign(gen, store=str(tmp_path))
    exhaustive.execute()
    assert exhaustive.last_store_stats.runs_executed > 0
    adaptive = _campaign(gen, **ADAPTIVE, store=str(tmp_path))
    result = adaptive.execute()
    stats = adaptive.last_store_stats
    assert stats.runs_executed == 0 and stats.misses == 0
    assert stats.runs_reused == len(result)
    # The storeless adaptive campaign is the ground truth.
    assert _outs(result) == _outs(_campaign(gen, **ADAPTIVE).execute())


def test_adaptive_store_rows_have_their_own_keys(tmp_path):
    """Partial adaptive rows never masquerade as exhaustive units."""
    gen = generate_system(11)
    _campaign(gen, **ADAPTIVE, store=str(tmp_path)).execute()
    kinds = {
        json.loads(path.read_text())["payload"]["kind"]
        for path in sorted((tmp_path / "units").glob("*/*.json"))
    }
    assert "adaptive-unit" in kinds
    # An exhaustive campaign over the same grid misses the adaptive
    # rows and executes the full grid fresh.
    full = _campaign(gen, store=str(tmp_path))
    full_result = full.execute()
    assert full.last_store_stats.runs_executed == len(full_result)


def test_adaptive_with_prune_and_store_warm_replay(tmp_path):
    gen = generate_system(0)
    kw = dict(
        error_models=(BitFlip(0),),
        static_prune=True,
        adaptive=True,
        ci_width=0.2,
        store=str(tmp_path),
    )
    cold = _campaign(gen, **kw)
    cold_result = cold.execute()
    warm = _campaign(gen, **kw)
    warm_result = warm.execute()
    assert warm.last_store_stats.runs_executed == 0
    assert _outs(warm_result) == _outs(cold_result)
    assert _rows(warm_result) == _rows(cold_result)
    assert warm_result.n_pruned_runs() == cold_result.n_pruned_runs()


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "params",
    [
        dict(ci_width=0.1),
        dict(round_size=4),
        dict(max_trials_per_target=8),
        dict(budget_policy="uniform"),
    ],
)
def test_adaptive_params_require_adaptive_flag(params):
    with pytest.raises(CampaignError, match="adaptive"):
        CampaignConfig(**{**BASE, **params})


@pytest.mark.parametrize(
    "params",
    [
        dict(adaptive=True, ci_width=0.0),
        dict(adaptive=True, ci_width=0.6),
        dict(adaptive=True, round_size=0),
        dict(adaptive=True, max_trials_per_target=0),
        dict(adaptive=True, budget_policy="no-such-policy"),
    ],
)
def test_invalid_adaptive_params_are_rejected(params):
    with pytest.raises(CampaignError):
        CampaignConfig(**{**BASE, **params})


# ---------------------------------------------------------------------------
# Observability: events, metrics, dashboard snapshot
# ---------------------------------------------------------------------------


def test_adaptive_observability_round_trip(tmp_path):
    from repro.obs import CampaignObserver
    from repro.obs.dash.reducer import CampaignStateReducer, validate_snapshot
    from repro.obs.events import (
        BudgetExhausted,
        RoundCompleted,
        TargetRetired,
        read_events,
        validate_events,
    )

    gen = generate_system(11)
    events_path = tmp_path / "events.jsonl"
    observer = CampaignObserver.to_files(
        events_path=str(events_path),
        with_metrics=True,
        system=gen.system,
    )
    result = _campaign(
        gen, observer=observer, adaptive=True, ci_width=0.3
    ).execute()
    observer.close()
    validate_events(events_path)
    events = [parsed.event for parsed in read_events(events_path)]
    retired = [e for e in events if isinstance(e, TargetRetired)]
    rounds = [e for e in events if isinstance(e, RoundCompleted)]
    assert len(retired) == len(result.adaptive_rows())
    assert rounds and rounds[-1].n_open == 0
    assert sum(e.n_trials for e in rounds) == len(result)
    exhausted = [e for e in events if isinstance(e, BudgetExhausted)]
    unconverged = sum(
        1 for row in result.adaptive_rows() if row.reason != "confidence"
    )
    if unconverged:
        assert exhausted and exhausted[-1].n_targets == unconverged
    else:
        assert not exhausted
    metrics = observer.metrics
    assert metrics.counter("adaptive.targets_retired").value == len(retired)
    assert metrics.counter("adaptive.rounds").value == len(rounds)
    assert metrics.counter("adaptive.trials").value == len(result)

    reducer = CampaignStateReducer.from_events_file(events_path)
    snapshot = reducer.snapshot()
    validate_snapshot(snapshot)
    adaptive = snapshot["adaptive"]
    assert adaptive["targets_retired"] == len(result.adaptive_rows())
    assert adaptive["trials"] == len(result)
    assert adaptive["targets_open"] == 0
    assert adaptive["unconverged"] == unconverged
    reasons = {row["reason"] for row in adaptive["retired"]}
    assert reasons <= {"confidence", "cap", "exhausted"}
