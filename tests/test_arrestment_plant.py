"""Unit tests for the arrestment plant physics and sensor models."""

from __future__ import annotations

import pytest

from repro.arrestment.constants import PULSES_PER_METRE
from repro.arrestment.plant import ArrestmentPlant, PlantConfig
from repro.arrestment.system import build_arrestment_model
from repro.simulation.runtime import SignalStore


@pytest.fixture()
def store() -> SignalStore:
    return SignalStore(build_arrestment_model())


def make_plant(**overrides) -> ArrestmentPlant:
    defaults = dict(mass_kg=14000.0, velocity_ms=60.0)
    defaults.update(overrides)
    return ArrestmentPlant(PlantConfig(**defaults))


class TestPlantConfig:
    def test_defaults_valid(self):
        PlantConfig()

    def test_invalid_mass(self):
        with pytest.raises(ValueError):
            PlantConfig(mass_kg=0)

    def test_invalid_velocity(self):
        with pytest.raises(ValueError):
            PlantConfig(velocity_ms=-1)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PlantConfig(drum_radius_m=0)

    def test_invalid_hydraulics(self):
        with pytest.raises(ValueError):
            PlantConfig(valve_time_constant_s=0)


class TestFreeRoll:
    def test_coasting_without_brake(self, store):
        """With the valve shut, only rolling drag slows the aircraft."""
        plant = make_plant()
        for t in range(1000):
            plant.before_software(t, store)
            plant.after_software(t, store)
        assert plant.velocity_ms == pytest.approx(60.0 - 0.05, abs=0.01)
        assert plant.position_m == pytest.approx(60.0, rel=0.01)

    def test_pulse_train_matches_distance(self, store):
        plant = make_plant()
        for t in range(500):
            plant.before_software(t, store)
        expected = plant.position_m * PULSES_PER_METRE
        assert store.read("PACNT") == pytest.approx(expected, abs=1)

    def test_tcnt_advances_2000_per_ms(self, store):
        plant = make_plant()
        plant.before_software(0, store)
        first = store.read("TCNT")
        plant.before_software(1, store)
        assert (store.read("TCNT") - first) & 0xFFFF == 2000

    def test_tic1_lags_tcnt_by_subms_offset(self, store):
        plant = make_plant()
        for t in range(10):
            plant.before_software(t, store)
        gap = (store.read("TCNT") - store.read("TIC1")) & 0xFFFF
        # At 60 m/s a pulse arrives roughly every 0.52 ms.
        assert 0 <= gap <= 2000


class TestBraking:
    def test_full_brake_stops_aircraft(self, store):
        plant = make_plant()
        store.write("TOC2", 0xFFFF)
        for t in range(20000):
            plant.before_software(t, store)
            plant.after_software(t, store)
            if plant.is_stopped:
                break
        assert plant.is_stopped
        telemetry = plant.telemetry()
        assert telemetry["stop_time_ms"] >= 0
        assert telemetry["peak_decel_ms2"] > 5.0

    def test_heavier_aircraft_decelerates_less(self, store):
        def decel_after(mass: float) -> float:
            plant = make_plant(mass_kg=mass)
            local = SignalStore(build_arrestment_model())
            local.write("TOC2", 0xFFFF)
            for t in range(2000):
                plant.before_software(t, local)
                plant.after_software(t, local)
            return 60.0 - plant.velocity_ms

        assert decel_after(8000.0) > decel_after(20000.0)

    def test_pressure_follows_first_order_lag(self, store):
        plant = make_plant()
        store.write("TOC2", 0xFFFF)
        plant.after_software(0, store)
        pressures = []
        for t in range(200):
            plant.before_software(t, store)
            pressures.append(plant.pressure_pa)
        # Monotone rise toward supply with ~63% at tau = 50 ms.
        assert pressures[49] == pytest.approx(20e6 * 0.63, rel=0.05)
        assert all(b >= a for a, b in zip(pressures, pressures[1:]))

    def test_adc_tracks_pressure(self, store):
        plant = make_plant()
        store.write("TOC2", 0x8000)
        plant.after_software(0, store)
        for t in range(1000):
            plant.before_software(t, store)
        adc_physical = store.read("ADC") / 0xFFFF * 20e6
        assert adc_physical == pytest.approx(plant.pressure_pa, rel=0.01)

    def test_no_motion_after_stop(self, store):
        plant = make_plant(velocity_ms=1.0)
        store.write("TOC2", 0xFFFF)
        plant.after_software(0, store)
        for t in range(5000):
            plant.before_software(t, store)
        position = plant.position_m
        for t in range(5000, 5100):
            plant.before_software(t, store)
        assert plant.position_m == position
        assert plant.velocity_ms == 0.0


class TestReset:
    def test_reset_restores_engagement_state(self, store):
        plant = make_plant()
        store.write("TOC2", 0xFFFF)
        plant.after_software(0, store)
        for t in range(500):
            plant.before_software(t, store)
        plant.reset()
        assert plant.velocity_ms == 60.0
        assert plant.position_m == 0.0
        assert plant.pressure_pa == 0.0
        telemetry = plant.telemetry()
        assert telemetry["pulses_emitted"] == 0.0
        assert telemetry["stop_time_ms"] == -1.0

    def test_runs_are_reproducible(self):
        def trace(plant: ArrestmentPlant) -> list[int]:
            local = SignalStore(build_arrestment_model())
            samples = []
            for t in range(300):
                plant.before_software(t, local)
                samples.append(local.read("PACNT"))
            return samples

        plant = make_plant()
        first = trace(plant)
        plant.reset()
        second = trace(plant)
        assert first == second
