"""Tests for the greedy failure shrinker and reproducer round-trips."""

from __future__ import annotations

import pytest

from repro.verify import (
    Reproducer,
    load_reproducer,
    oracle_failure,
    replay,
    shrink_failure,
    write_reproducer,
)
from repro.verify.shrink import remove_connection, remove_module

from tests.verify_cases import small_passing_triple, unfired_trap_triple


class TestStructuralEdits:
    def test_remove_module_prunes_signal_tables(self):
        spec, _ = unfired_trap_triple()
        shrunk = remove_module(spec, "OK2")
        assert shrunk is not None
        assert [m.name for m in shrunk.modules] == ["BAD", "OK0", "OK1"]
        # OK1's output lost its only consumer and becomes a system output.
        assert "ok1_out" in shrunk.system_outputs
        assert "ok2_out" not in shrunk.widths

    def test_remove_module_orphan_inputs_become_system_inputs(self):
        spec, _ = unfired_trap_triple()
        shrunk = remove_module(spec, "OK0")
        assert shrunk is not None
        # OK1 now reads a producer-less signal; the environment drives it.
        assert "ok0_out" in shrunk.system_inputs

    def test_remove_unknown_module_is_a_noop(self):
        spec, _ = unfired_trap_triple()
        assert remove_module(spec, "NOPE") is None

    def test_remove_last_module_yields_none(self):
        spec, _ = small_passing_triple()
        assert remove_module(spec, "M0") is None

    def test_remove_connection_never_strips_last_input(self):
        spec, _ = small_passing_triple()
        assert remove_connection(spec, "M0", "in0") is None

    def test_remove_connection_drops_input_and_mask(self):
        spec, _ = unfired_trap_triple()
        # Give BAD a second input so the connection pass has work to do.
        import dataclasses

        bad = spec.modules[0]
        widened = dataclasses.replace(
            bad,
            inputs=("bad_in", "ok0_in"),
            masks={"bad_in": {"bad_out": 0xF}, "ok0_in": {"bad_out": 0x3}},
        )
        spec = dataclasses.replace(spec, modules=(widened, *spec.modules[1:]))
        shrunk = remove_connection(spec, "BAD", "ok0_in")
        assert shrunk is not None
        module = shrunk.module("BAD")
        assert module.inputs == ("bad_in",)
        assert "ok0_in" not in module.masks


class TestShrinkFailure:
    def test_refuses_to_shrink_a_passing_triple(self):
        spec, campaign = small_passing_triple()
        with pytest.raises(ValueError, match="passes"):
            shrink_failure(spec, campaign)

    def test_shrinks_unfired_trap_to_single_module(self):
        spec, campaign = unfired_trap_triple()
        shrunk_spec, shrunk_campaign, failure = shrink_failure(spec, campaign)
        assert [m.name for m in shrunk_spec.modules] == ["BAD"]
        assert len(list(shrunk_spec.connections())) == 1
        assert len(shrunk_campaign.injection_times_ms) == 1
        assert shrunk_campaign.n_bits == 1
        assert "[exact-agreement]" in failure

    def test_shrunk_triple_still_fails_the_oracle(self):
        spec, campaign = unfired_trap_triple()
        shrunk_spec, shrunk_campaign, _ = shrink_failure(spec, campaign)
        assert oracle_failure(shrunk_spec, shrunk_campaign) is not None


class TestReproducerRoundTrip:
    def test_write_then_load_then_replay_failure(self, tmp_path):
        spec, campaign = unfired_trap_triple()
        reproducer = Reproducer(
            kind="generated",
            campaign=campaign,
            spec=spec,
            note="unfired trap",
            failure="[exact-agreement] measured != analytical",
        )
        path = write_reproducer(tmp_path, reproducer)
        assert path.name.startswith("shrunk-")
        loaded = load_reproducer(path)
        assert loaded.note == "unfired trap"
        assert loaded.campaign == campaign
        with pytest.raises(Exception, match="exact-agreement"):
            replay(loaded)

    def test_content_id_ignores_failure_text(self):
        spec, campaign = unfired_trap_triple()
        with_failure = Reproducer(
            kind="generated", campaign=campaign, spec=spec, failure="boom"
        )
        without = Reproducer(kind="generated", campaign=campaign, spec=spec)
        assert with_failure.content_id() == without.content_id()
