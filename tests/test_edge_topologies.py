"""Edge-case topologies: source modules, sinks, and boundary overlaps.

The paper's systems are well-behaved; these tests pin the framework's
documented behaviour on the unusual-but-legal shapes the model admits.
"""

from __future__ import annotations

import pytest

from repro.core.backtrack import build_backtrack_tree
from repro.core.exposure import all_module_exposures
from repro.core.graph import PermeabilityGraph
from repro.core.permeability import PermeabilityMatrix
from repro.core.trace import build_trace_tree
from repro.core.treenode import NodeKind
from repro.model.builder import SystemBuilder


class TestSourceModule:
    """A module with no inputs (a pure generator)."""

    @pytest.fixture()
    def matrix(self):
        builder = SystemBuilder("source")
        builder.add_module("GEN", inputs=[], outputs=["g"])
        builder.add_module("USE", inputs=["g", "x"], outputs=["out"])
        builder.mark_system_input("x")
        builder.mark_system_output("out")
        return PermeabilityMatrix.uniform(builder.build(), 0.5)

    def test_source_has_no_pairs(self, matrix):
        assert matrix.system.module("GEN").n_pairs == 0
        assert matrix.relative_permeability("GEN") == 0.0
        assert matrix.nonweighted_relative_permeability("GEN") == 0.0

    def test_backtrack_stops_at_source_output(self, matrix):
        """A generator output cannot be backtracked through: the child
        is treated as an analysis boundary."""
        tree = build_backtrack_tree(matrix, "out")
        g_nodes = tree.root.find("g")
        assert len(g_nodes) == 1
        assert g_nodes[0].kind is NodeKind.BOUNDARY
        assert g_nodes[0].is_leaf

    def test_source_contributes_no_arcs(self, matrix):
        graph = PermeabilityGraph(matrix)
        assert graph.outgoing_arcs("GEN") == ()
        exposures = all_module_exposures(graph)
        # USE receives no internal arcs either (GEN has no pairs).
        assert not exposures["USE"].has_exposure


class TestSinkModule:
    """A module with no outputs (a pure consumer, e.g. a logger)."""

    @pytest.fixture()
    def matrix(self):
        builder = SystemBuilder("sink")
        builder.add_module("A", inputs=["x"], outputs=["mid", "out"])
        builder.add_module("LOG", inputs=["mid"], outputs=[])
        builder.mark_system_input("x")
        builder.mark_system_output("out")
        return PermeabilityMatrix.uniform(builder.build(), 0.5)

    def test_sink_has_no_pairs(self, matrix):
        assert matrix.system.module("LOG").n_pairs == 0

    def test_trace_tree_cuts_at_sink(self, matrix):
        """A signal absorbed by a sink cannot be followed further; the
        node is labelled as a cut (CYCLE kind documents 'cannot follow')."""
        tree = build_trace_tree(matrix, "x")
        mid_nodes = tree.root.find("mid")
        assert len(mid_nodes) == 1
        assert mid_nodes[0].is_leaf
        assert mid_nodes[0].kind is NodeKind.CYCLE

    def test_backtrack_unaffected_by_sink(self, matrix):
        tree = build_backtrack_tree(matrix, "out")
        assert tree.n_paths() == 1
        assert next(tree.root.leaves()).signal == "x"


class TestBoundaryOverlap:
    """A system output that is also consumed internally."""

    @pytest.fixture()
    def matrix(self):
        builder = SystemBuilder("overlap")
        builder.add_module("A", inputs=["x"], outputs=["shared"])
        builder.add_module("B", inputs=["shared"], outputs=["final"])
        builder.mark_system_input("x")
        builder.mark_system_output("shared", "final")
        return PermeabilityMatrix.uniform(builder.build(), 0.5)

    def test_both_outputs_get_backtrack_trees(self, matrix):
        shared = build_backtrack_tree(matrix, "shared")
        final = build_backtrack_tree(matrix, "final")
        assert shared.n_paths() == 1
        assert final.n_paths() == 1

    def test_trace_tree_terminates_at_first_boundary(self, matrix):
        """Documented behaviour: a system output is a leaf even when it
        is also consumed internally — the analysis reports the first
        boundary crossing."""
        tree = build_trace_tree(matrix, "x")
        leaves = list(tree.root.leaves())
        assert [leaf.signal for leaf in leaves] == ["shared"]
        assert leaves[0].kind is NodeKind.BOUNDARY

    def test_graph_has_both_environment_and_internal_arcs(self, matrix):
        graph = PermeabilityGraph(matrix)
        carrying = graph.arcs_carrying("shared")
        consumers = {arc.consumer for arc in carrying}
        assert consumers == {"B", "<environment>"}


class TestParallelEdges:
    """Two distinct signals between the same pair of modules."""

    def test_arc_multiplicity(self):
        builder = SystemBuilder("parallel")
        builder.add_module("P", inputs=["x"], outputs=["s1", "s2"])
        builder.add_module("Q", inputs=["s1", "s2"], outputs=["out"])
        builder.mark_system_input("x")
        builder.mark_system_output("out")
        matrix = PermeabilityMatrix.uniform(builder.build(), 1.0)
        graph = PermeabilityGraph(matrix)
        assert len(graph.arcs_between("P", "Q")) == 2
        tree = build_backtrack_tree(matrix, "out")
        # Two parallel branches, both reaching x.
        assert tree.n_paths() == 2
        assert all(leaf.signal == "x" for leaf in tree.root.leaves())
