"""Unit tests for the propagation-latency extension."""

from __future__ import annotations

import pytest

from repro.injection.golden_run import GoldenRunComparison
from repro.injection.latency import (
    PairLatency,
    _percentile,
    latency_statistics,
    render_latency_table,
)
from repro.injection.outcomes import CampaignResult, InjectionOutcome

from tests.conftest import build_toy_model


def outcome(
    module: str,
    input_signal: str,
    fired_at: int,
    divergences: dict[str, int | None],
) -> InjectionOutcome:
    base = {"src": None, "filt": None, "out": None}
    base.update(divergences)
    return InjectionOutcome(
        case_id="case0",
        module=module,
        input_signal=input_signal,
        scheduled_time_ms=fired_at,
        fired_at_ms=fired_at,
        error_model="bitflip[0]",
        comparison=GoldenRunComparison("case0", base),
    )


class TestPercentile:
    def test_single_value(self):
        assert _percentile([5], 0.5) == 5.0

    def test_median_odd(self):
        assert _percentile([1, 2, 9], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert _percentile([1, 3], 0.5) == 2.0

    def test_extremes(self):
        assert _percentile([1, 2, 3], 0.0) == 1.0
        assert _percentile([1, 2, 3], 1.0) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _percentile([], 0.5)


class TestLatencyStatistics:
    def make_result(self) -> CampaignResult:
        result = CampaignResult(build_toy_model())
        result.add(outcome("AMP", "filt", 10, {"out": 10}))
        result.add(outcome("AMP", "filt", 10, {"out": 13}))
        result.add(outcome("AMP", "filt", 10, {"out": 30}))
        result.add(outcome("AMP", "filt", 10, {}))  # no propagation
        return result

    def test_basic_statistics(self):
        stats = latency_statistics(self.make_result())
        pair = stats[("AMP", "filt", "out")]
        assert pair.n_samples == 3
        assert pair.min_ms == 0
        assert pair.max_ms == 20
        assert pair.mean_ms == pytest.approx((0 + 3 + 20) / 3)
        assert pair.median_ms == 3.0

    def test_unpropagated_pairs_absent(self):
        result = CampaignResult(build_toy_model())
        result.add(outcome("AMP", "filt", 10, {}))
        assert latency_statistics(result) == {}

    def test_synchronous_classification(self):
        fast = PairLatency("M", "a", "b", 4, 0, 6, 3.0, 3.0)
        slow = PairLatency("M", "a", "b", 4, 0, 50, 10.0, 4.0)
        assert fast.is_synchronous
        assert not slow.is_synchronous

    def test_direct_only_filtering(self):
        result = CampaignResult(build_toy_model())
        # Output diverges only after the error looped back to the input.
        result.add(outcome("AMP", "filt", 10, {"out": 30, "filt": 15}))
        assert latency_statistics(result, direct_only=True) == {}
        total = latency_statistics(result, direct_only=False)
        assert total[("AMP", "filt", "out")].n_samples == 1

    def test_latency_measured_from_firing_time(self):
        result = CampaignResult(build_toy_model())
        late = InjectionOutcome(
            case_id="case0",
            module="AMP",
            input_signal="filt",
            scheduled_time_ms=10,
            fired_at_ms=12,  # trap fired 2 ms after scheduling
            error_model="bitflip[0]",
            comparison=GoldenRunComparison(
                "case0", {"src": None, "filt": None, "out": 15}
            ),
        )
        result.add(late)
        stats = latency_statistics(result)
        assert stats[("AMP", "filt", "out")].min_ms == 3

    def test_render_table(self):
        text = render_latency_table(latency_statistics(self.make_result()))
        assert "AMP: filt -> out" in text
        assert "p50" in text

    def test_end_to_end_on_toy_runtime(self):
        from repro.injection.campaign import CampaignConfig, InjectionCampaign
        from repro.injection.error_models import BitFlip

        from tests.conftest import build_toy_run

        campaign = InjectionCampaign(
            build_toy_model(),
            lambda case: build_toy_run(),
            {"c": None},
            CampaignConfig(
                duration_ms=20,
                injection_times_ms=(5,),
                error_models=(BitFlip(15),),
            ),
        )
        stats = latency_statistics(campaign.execute())
        # The chain propagates within the same millisecond frame.
        assert stats[("AMP", "filt", "out")].max_ms == 0
        assert stats[("FILT", "src", "filt")].max_ms == 0
