"""Unit tests for :mod:`repro.core.graph` (the permeability graph)."""

from __future__ import annotations

import pytest

from repro.core.graph import ENVIRONMENT, PermeabilityGraph
from repro.core.permeability import PermeabilityMatrix
from repro.model.errors import MissingPermeabilityError, UnknownModuleError

@pytest.fixture()
def fig2_graph(fig2_matrix) -> PermeabilityGraph:
    return PermeabilityGraph(fig2_matrix)


class TestConstruction:
    def test_requires_complete_matrix(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        with pytest.raises(MissingPermeabilityError):
            PermeabilityGraph(matrix)

    def test_nodes_are_modules(self, fig2_graph, fig2_system):
        assert fig2_graph.nodes() == fig2_system.module_names()

    def test_arc_count(self, fig2_graph):
        # Every (pair, consumer) combination plus environment arcs:
        # A: a1 -> B (1 pair) = 1
        # B: b1 -> {B, D} (2 pairs x 2 consumers) = 4; b2 -> E (2 pairs) = 2
        # C: c1 -> D = 1
        # D: d1 -> E (2 pairs) = 2
        # E: sys_out -> environment (3 pairs) = 3
        assert fig2_graph.n_arcs() == 13

    def test_more_arcs_than_signals(self, fig2_graph, fig2_system):
        """The paper: 'there may be more arcs between two nodes than
        there are signals between the corresponding modules'."""
        arcs_b_to_d = fig2_graph.arcs_between("B", "D")
        assert len(arcs_b_to_d) == 2  # both of B's pairs producing b1
        assert len({arc.output_signal for arc in arcs_b_to_d}) == 1

    def test_self_loops_for_feedback(self, fig2_graph):
        loops = [arc for arc in fig2_graph.arcs() if arc.is_self_loop]
        assert len(loops) == 2  # B's two pairs producing b1 loop into B
        assert {arc.producer for arc in loops} == {"B"}

    def test_environment_arcs(self, fig2_graph):
        env_arcs = fig2_graph.environment_arcs()
        assert len(env_arcs) == 3
        assert all(arc.output_signal == "sys_out" for arc in env_arcs)
        assert all(arc.to_environment for arc in env_arcs)

    def test_weights_match_matrix(self, fig2_graph, fig2_matrix):
        for arc in fig2_graph.arcs():
            assert arc.weight == fig2_matrix.get(
                arc.producer, arc.input_signal, arc.output_signal
            )


class TestQueries:
    def test_incoming_arcs(self, fig2_graph):
        incoming = fig2_graph.incoming_arcs("E")
        # b2 pairs (2) + d1 pairs (2) = 4 arcs into E.
        assert len(incoming) == 4
        assert all(arc.consumer == "E" for arc in incoming)

    def test_incoming_arcs_input_only_module(self, fig2_graph):
        assert fig2_graph.incoming_arcs("A") == ()
        assert fig2_graph.incoming_arcs("C") == ()

    def test_outgoing_arcs(self, fig2_graph):
        outgoing = fig2_graph.outgoing_arcs("B")
        assert len(outgoing) == 6  # 4 via b1 (B,B,D,D) + 2 via b2

    def test_zero_weight_filtering(self, fig2_graph):
        all_arcs = list(fig2_graph.arcs(include_zero=True))
        nonzero = list(fig2_graph.arcs(include_zero=False))
        assert len(all_arcs) - len(nonzero) == 1  # only E.ext_e pair is 0

    def test_self_loop_filtering(self, fig2_graph):
        without = fig2_graph.incoming_arcs("B", include_self_loops=False)
        with_loops = fig2_graph.incoming_arcs("B")
        assert len(with_loops) - len(without) == 2

    def test_arcs_carrying(self, fig2_graph):
        arcs = fig2_graph.arcs_carrying("b1")
        assert len(arcs) == 4
        assert all(arc.output_signal == "b1" for arc in arcs)

    def test_unknown_module_rejected(self, fig2_graph):
        with pytest.raises(UnknownModuleError):
            fig2_graph.incoming_arcs("NOPE")
        with pytest.raises(UnknownModuleError):
            fig2_graph.outgoing_arcs("NOPE")

    def test_adjacency_multiplicity(self, fig2_graph):
        adjacency = fig2_graph.adjacency()
        assert adjacency["B"]["D"] == 2
        assert adjacency["B"]["B"] == 2
        assert adjacency["E"][ENVIRONMENT] == 3

    def test_arc_labels(self, fig2_graph):
        arc = fig2_graph.arcs_between("A", "B")[0]
        assert "A" in arc.label()
        assert "ext_a" in arc.label()
        assert "a1" in str(arc)


class TestArrestmentGraph:
    def test_paper_pair_count(self):
        from repro.arrestment import build_arrestment_model

        system = build_arrestment_model()
        assert system.n_pairs() == 25  # Section 8: "25 input/output pairs"
        matrix = PermeabilityMatrix.uniform(system, 0.5)
        graph = PermeabilityGraph(matrix)
        # CALC receives mscnt (1 arc), pulscnt/slow_speed/stopped
        # (9 arcs from DIST_S) and its own i feedback (5 arcs).
        assert len(graph.incoming_arcs("CALC")) == 15
        # V_REG receives SetValue (5 arcs, one per CALC pair producing
        # it) and InValue (PRES_S's single pair).
        assert len(graph.incoming_arcs("V_REG")) == 6
        # The single system output TOC2 is PRES_A's only pair.
        assert len(graph.environment_arcs()) == 1
