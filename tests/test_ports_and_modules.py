"""Unit tests for :mod:`repro.model.ports` and :mod:`repro.model.module`."""

from __future__ import annotations

import pytest

from repro.model.errors import DuplicateNameError, UnknownSignalError
from repro.model.module import BACKGROUND, ModuleSpec, SoftwareModule
from repro.model.ports import InputPort, OutputPort, PortDirection


class TestPort:
    def test_input_constructor(self):
        port = InputPort("DIST_S", 1, "PACNT")
        assert port.is_input and not port.is_output
        assert port.direction is PortDirection.INPUT

    def test_output_constructor(self):
        port = OutputPort("CALC", 2, "SetValue")
        assert port.is_output and not port.is_input

    def test_label_matches_paper_notation(self):
        assert InputPort("DIST_S", 1, "PACNT").label() == "I^DIST_S_1"
        assert OutputPort("CALC", 2, "SetValue").label() == "O^CALC_2"

    def test_str_includes_signal(self):
        assert "PACNT" in str(InputPort("DIST_S", 1, "PACNT"))

    def test_zero_index_rejected(self):
        with pytest.raises(ValueError):
            InputPort("M", 0, "s")

    def test_ordering_is_stable(self):
        a = InputPort("A", 1, "x")
        b = InputPort("A", 2, "y")
        assert sorted([b, a]) == [a, b]


class TestModuleSpec:
    def make(self) -> ModuleSpec:
        return ModuleSpec(
            name="CALC",
            inputs=("i", "mscnt", "pulscnt", "slow_speed", "stopped"),
            outputs=("i", "SetValue"),
            period_ms=None,
        )

    def test_counts(self):
        spec = self.make()
        assert spec.n_inputs == 5
        assert spec.n_outputs == 2
        assert spec.n_pairs == 10

    def test_background(self):
        assert self.make().is_background
        assert not ModuleSpec("M", ("a",), ("b",), period_ms=1).is_background
        assert BACKGROUND is None

    def test_input_index_is_one_based(self):
        spec = self.make()
        assert spec.input_index("i") == 1
        assert spec.input_index("mscnt") == 2
        assert spec.input_index("stopped") == 5

    def test_output_index(self):
        spec = self.make()
        assert spec.output_index("i") == 1
        assert spec.output_index("SetValue") == 2

    def test_unknown_input_raises(self):
        with pytest.raises(UnknownSignalError):
            self.make().input_index("nope")

    def test_unknown_output_raises(self):
        with pytest.raises(UnknownSignalError):
            self.make().output_index("nope")

    def test_pairs_order_matches_table1(self):
        spec = ModuleSpec("M", ("a", "b"), ("x", "y"))
        assert list(spec.pairs()) == [
            ("a", "x"),
            ("a", "y"),
            ("b", "x"),
            ("b", "y"),
        ]

    def test_ports_iteration(self):
        spec = self.make()
        inputs = list(spec.input_ports())
        assert [p.index for p in inputs] == [1, 2, 3, 4, 5]
        outputs = list(spec.output_ports())
        assert [p.signal for p in outputs] == ["i", "SetValue"]

    def test_port_lookup(self):
        spec = self.make()
        assert spec.input_port("pulscnt") == InputPort("CALC", 3, "pulscnt")
        assert spec.output_port("SetValue") == OutputPort("CALC", 2, "SetValue")

    def test_feedback_detection(self):
        spec = self.make()
        assert spec.has_feedback()
        assert spec.feedback_signals() == ("i",)

    def test_no_feedback(self):
        spec = ModuleSpec("M", ("a",), ("b",))
        assert not spec.has_feedback()
        assert spec.feedback_signals() == ()

    def test_duplicate_input_rejected(self):
        with pytest.raises(DuplicateNameError):
            ModuleSpec("M", ("a", "a"), ("b",))

    def test_duplicate_output_rejected(self):
        with pytest.raises(DuplicateNameError):
            ModuleSpec("M", ("a",), ("b", "b"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ModuleSpec("", ("a",), ("b",))

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            ModuleSpec("M", ("a",), ("b",), period_ms=0)


class TestSoftwareModule:
    def test_activate_contract(self):
        class Echo(SoftwareModule):
            def activate(self, inputs, now_ms):
                return {"b": inputs["a"]}

        module = Echo(ModuleSpec("E", ("a",), ("b",)))
        assert module.name == "E"
        assert module.activate({"a": 7}, 0) == {"b": 7}

    def test_reset_default_noop(self):
        class Echo(SoftwareModule):
            def activate(self, inputs, now_ms):
                return {}

        Echo(ModuleSpec("E", ("a",), ("b",))).reset()  # must not raise
