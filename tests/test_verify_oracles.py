"""Tests for the differential oracle and its metamorphic relations."""

from __future__ import annotations

import pytest

from repro.core.permeability import PermeabilityEstimate, PermeabilityMatrix
from repro.injection.estimator import pair_trial_counts
from repro.obs.propagation import ArcCounts
from repro.verify import (
    GeneratedSystem,
    OracleFailure,
    VerifyCampaign,
    default_campaign,
    generate_system,
    verify_generated,
)
from repro.verify.oracles import (
    check_dead_sink_invariance,
    check_prerr_scaling,
)

from tests.verify_cases import small_passing_triple, unfired_trap_triple

ALL_CHECKS = (
    "strategy-identity",
    "obs-vs-estimator",
    "exact-agreement",
    "ci-sanity",
    "ci-containment",
    "static-containment",
    "incremental-parity",
    "adaptive-soundness",
    "metamorphic-dead-sink",
    "metamorphic-prerr-scaling",
)


def _feedback_seed() -> int:
    for seed in range(10):
        if generate_system(seed).has_feedback:
            return seed
    raise AssertionError("no feedback topology in the first 10 seeds")


class TestOraclePasses:
    def test_small_triple_passes_every_check(self):
        spec, campaign = small_passing_triple()
        report = verify_generated(GeneratedSystem(spec), campaign)
        assert report.checks == ALL_CHECKS
        assert not report.has_feedback
        assert report.n_runs > 0

    def test_feedback_topology_passes(self):
        generated = generate_system(_feedback_seed())
        report = verify_generated(generated)
        assert report.has_feedback
        assert report.checks == ALL_CHECKS

    def test_report_render_mentions_strategies(self):
        spec, campaign = small_passing_triple()
        report = verify_generated(GeneratedSystem(spec), campaign)
        assert "4 strategies" in report.render()
        assert "acyclic" in report.render()


class TestOracleCatchesBugs:
    def test_unfired_trap_fails_exact_agreement(self):
        spec, campaign = unfired_trap_triple()
        with pytest.raises(OracleFailure) as excinfo:
            verify_generated(GeneratedSystem(spec), campaign)
        assert excinfo.value.check == "exact-agreement"
        assert "[exact-agreement]" in str(excinfo.value)

    def test_biased_point_estimate_is_caught(self, monkeypatch):
        """An off-by-one in n_err/n_inj escapes the Wilson CI at n~16 but
        not the exact-agreement check."""
        original = PermeabilityEstimate.from_counts.__func__

        def biased(cls, n_errors, n_injections):
            honest = original(cls, n_errors, n_injections)
            return PermeabilityEstimate(
                value=min(1.0, (n_errors + 1) / n_injections),
                n_injections=honest.n_injections,
                n_errors=honest.n_errors,
            )

        monkeypatch.setattr(
            PermeabilityEstimate, "from_counts", classmethod(biased)
        )
        spec, campaign = small_passing_triple()
        with pytest.raises(OracleFailure) as excinfo:
            verify_generated(GeneratedSystem(spec), campaign)
        assert excinfo.value.check == "exact-agreement"

    def test_malformed_wilson_interval_is_caught(self, monkeypatch):
        def broken(self, z=1.96):
            return (min(1.0, self.value + 0.01), 1.0)

        monkeypatch.setattr(PermeabilityEstimate, "wilson_interval", broken)
        spec, campaign = small_passing_triple()
        with pytest.raises(OracleFailure) as excinfo:
            verify_generated(GeneratedSystem(spec), campaign)
        assert excinfo.value.check == "ci-sanity"


class TestMetamorphicRelations:
    def test_relations_hold_on_feedback_topology(self):
        generated = generate_system(_feedback_seed())
        campaign = default_campaign(generated)
        analytical = generated.analytical_matrix(campaign.n_bits)
        check_dead_sink_invariance(generated, analytical)
        check_prerr_scaling(generated, analytical)
        check_prerr_scaling(generated, analytical, factor=0.25)


class TestVerifyCampaign:
    def test_round_trips_without_targets(self):
        campaign = VerifyCampaign(
            duration_ms=20, injection_times_ms=(3, 9), n_bits=4, seed=5
        )
        assert VerifyCampaign.from_jsonable(campaign.to_jsonable()) == campaign

    def test_round_trips_with_targets(self):
        campaign = VerifyCampaign(
            duration_ms=20,
            injection_times_ms=(3,),
            n_bits=2,
            seed=5,
            targets=(("M0", "in0"), ("M1", "s0_0")),
        )
        assert VerifyCampaign.from_jsonable(campaign.to_jsonable()) == campaign

    def test_default_campaign_leaves_post_injection_headroom(self):
        generated = generate_system(0)
        campaign = default_campaign(generated)
        slack = campaign.duration_ms - max(campaign.injection_times_ms)
        assert slack >= 3 * generated.spec.n_slots
        assert 1 <= campaign.n_bits <= 8


class TestCountPlumbing:
    def test_pair_trial_counts_rejects_analytical_matrix(self):
        spec, _ = small_passing_triple()
        matrix = PermeabilityMatrix(GeneratedSystem(spec).system)
        matrix.set("M0", "in0", "out0", 0.5)
        with pytest.raises(ValueError, match="trial counts"):
            pair_trial_counts(matrix)

    def test_pair_trial_counts_exposes_raw_counts(self):
        spec, _ = small_passing_triple()
        matrix = PermeabilityMatrix(GeneratedSystem(spec).system)
        matrix.set_counts("M0", "in0", "out0", n_errors=3, n_injections=12)
        assert pair_trial_counts(matrix) == {("M0", "in0", "out0"): (3, 12)}

    def test_arc_counts_wilson_matches_estimate(self):
        arc = ArcCounts(
            module="M0",
            input_signal="in0",
            output_signal="out0",
            n_injections=16,
            n_propagated=8,
        )
        expected = PermeabilityEstimate.from_counts(8, 16).wilson_interval()
        assert arc.wilson_interval() == expected

    def test_arc_counts_wilson_uninformative_without_injections(self):
        arc = ArcCounts(module="M0", input_signal="in0", output_signal="out0")
        assert arc.wilson_interval() == (0.0, 1.0)
