"""The shipped large-grid reference reproduction stays loadable and sane.

``benchmarks/reference/large_grid_matrix.json`` holds the permeability
matrix estimated from the extended campaign (8 workloads x the paper's
full 16-bit x 10-instant grid = 1 280 injections per signal, 16 640
runs; see EXPERIMENTS.md).  These tests re-derive the headline results
from the stored matrix, so the reference and the analysis code cannot
drift apart silently.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.arrestment import build_arrestment_model
from repro.core.analysis import PropagationAnalysis
from repro.core.permeability import PermeabilityMatrix

REFERENCE = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "reference"
    / "large_grid_matrix.json"
)


@pytest.fixture(scope="module")
def reference_matrix() -> PermeabilityMatrix:
    system = build_arrestment_model()
    return PermeabilityMatrix.from_json(system, REFERENCE.read_text())


class TestReferenceMatrix:
    def test_loads_complete_with_counts(self, reference_matrix):
        assert reference_matrix.is_complete()
        for _, estimate in reference_matrix.items():
            assert estimate.is_experimental
            assert estimate.n_injections == 1280

    def test_clock_row_paper_exact(self, reference_matrix):
        assert reference_matrix.get("CLOCK", "ms_slot_nbr", "ms_slot_nbr") == 1.0
        assert reference_matrix.relative_permeability("CLOCK") == 0.5

    def test_ob2_stopped_column_near_zero(self, reference_matrix):
        for input_signal in ("PACNT", "TIC1", "TCNT"):
            assert reference_matrix.get("DIST_S", input_signal, "stopped") <= 0.001

    def test_pres_s_least_permeable(self, reference_matrix):
        values = {
            module: reference_matrix.relative_permeability(module)
            for module in reference_matrix.system.module_names()
        }
        assert min(values, key=values.get) == "PRES_S"
        assert values["PRES_S"] <= 0.02  # paper: 0.000

    def test_table4_nonzero_path_count(self, reference_matrix):
        """Paper: 13 of 22 paths non-zero; the reference grid gives 12."""
        analysis = PropagationAnalysis(reference_matrix)
        paths = analysis.ranked_output_paths("TOC2")
        nonzero = analysis.ranked_output_paths("TOC2", only_nonzero=True)
        assert len(paths) == 22
        assert len(nonzero) == 12

    def test_table3_leaders(self, reference_matrix):
        analysis = PropagationAnalysis(reference_matrix)
        exposures = analysis.signal_exposures
        leaders = sorted(exposures, key=lambda s: -exposures[s])[:3]
        assert leaders == ["SetValue", "i", "OutValue"]

    def test_ob4_placement_from_reference(self, reference_matrix):
        analysis = PropagationAnalysis(reference_matrix)
        names = [c.signal for c in analysis.placement.edm_signals]
        assert names == ["SetValue", "i", "OutValue", "pulscnt"]
