"""Tests for the adjusted-path (P') analysis and related extensions."""

from __future__ import annotations

import pytest

from repro.core.analysis import PropagationAnalysis
from repro.core.permeability import PermeabilityMatrix
from repro.model.builder import SystemBuilder
from repro.model.examples import fig2_permeabilities


def build_system_with_priors():
    """The Fig. 2 topology with declared input-error probabilities."""
    builder = SystemBuilder("fig2-with-priors")
    builder.add_signal("ext_a", error_probability=0.10)
    builder.add_signal("ext_c", error_probability=0.01)
    # ext_e deliberately has no declared prior.
    builder.add_module("A", inputs=["ext_a"], outputs=["a1"])
    builder.add_module("B", inputs=["b1", "a1"], outputs=["b1", "b2"])
    builder.add_module("C", inputs=["ext_c"], outputs=["c1"])
    builder.add_module("D", inputs=["b1", "c1"], outputs=["d1"])
    builder.add_module("E", inputs=["b2", "d1", "ext_e"], outputs=["sys_out"])
    builder.mark_system_input("ext_a", "ext_c", "ext_e")
    builder.mark_system_output("sys_out")
    return builder.build()


@pytest.fixture()
def prior_analysis():
    system = build_system_with_priors()
    values = {
        (module, i, k): value
        for (module, i, k), value in fig2_permeabilities().items()
    }
    return PropagationAnalysis(PermeabilityMatrix.from_dict(system, values))


class TestAdjustedPaths:
    def test_adjustment_scales_by_source_prior(self, prior_analysis):
        adjusted = dict_by_source(prior_analysis)
        # ext_c path: conditional 0.495, prior 0.01 -> 0.00495.
        path, value = adjusted["ext_c"][0]
        assert value == pytest.approx(0.01 * path.weight)

    def test_priors_reorder_paths(self, prior_analysis):
        """The conditional ranking puts ext_c first (weight 0.495); the
        rare-error prior on ext_c demotes it below the ext_a paths."""
        items = prior_analysis.adjusted_output_paths("sys_out")
        sources_in_order = [path.source for path, _ in items]
        assert sources_in_order.index("ext_a") < sources_in_order.index("ext_c")
        best_ext_a = next(
            value for path, value in items if path.source == "ext_a"
        )
        best_conditional_ext_a = max(
            path.weight for path, _ in items if path.source == "ext_a"
        )
        assert best_ext_a == pytest.approx(0.10 * best_conditional_ext_a)

    def test_missing_prior_yields_none(self, prior_analysis):
        items = prior_analysis.adjusted_output_paths("sys_out")
        ext_e = next(item for item in items if item[0].source == "ext_e")
        assert ext_e[1] is None

    def test_feedback_sources_have_no_prior(self, prior_analysis):
        items = prior_analysis.adjusted_output_paths("sys_out")
        b1_items = [item for item in items if item[0].source == "b1"]
        assert b1_items
        assert all(value is None for _, value in b1_items)

    def test_ordering_is_descending(self, prior_analysis):
        items = prior_analysis.adjusted_output_paths("sys_out")
        keys = [
            value if value is not None else path.weight
            for path, value in items
        ]
        assert keys == sorted(keys, reverse=True)


class TestCliLatencyIntegration:
    def test_public_api_exports(self):
        import repro

        assert hasattr(repro, "latency_statistics")
        assert hasattr(repro, "RangeCheck")
        assert hasattr(repro, "evaluate_detectors")
        assert callable(repro.render_latency_table)


def dict_by_source(analysis: PropagationAnalysis):
    grouped: dict[str, list] = {}
    for path, value in analysis.adjusted_output_paths("sys_out"):
        grouped.setdefault(path.source, []).append((path, value))
    return grouped


class TestSensitivityFacade:
    def test_defaults_to_first_output(self, prior_analysis):
        report = prior_analysis.sensitivity()
        assert report.system_output == "sys_out"
        assert report.reach > 0

    def test_explicit_output(self, prior_analysis):
        report = prior_analysis.sensitivity("sys_out")
        assert {item.pair for item in report.sensitivities}
