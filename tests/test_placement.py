"""Unit tests for the EDM/ERM placement advisor (Section 5, OB1–OB6)."""

from __future__ import annotations

import pytest

from repro.core.permeability import PermeabilityMatrix
from repro.core.placement import PlacementAdvisor
from repro.model.errors import MissingPermeabilityError


@pytest.fixture()
def fig2_report(fig2_matrix):
    return PlacementAdvisor(fig2_matrix).report()


class TestFig2Placement:
    def test_requires_complete_matrix(self, fig2_system):
        with pytest.raises(MissingPermeabilityError):
            PlacementAdvisor(PermeabilityMatrix(fig2_system))

    def test_edm_modules_exclude_no_exposure(self, fig2_report):
        modules = [item.module for item in fig2_report.edm_modules]
        assert "A" not in modules and "C" not in modules
        assert modules[0] == "E"  # highest non-weighted exposure

    def test_erm_modules_ranked_by_permeability(self, fig2_report):
        assert fig2_report.erm_modules[0].module == "C"

    def test_ob1_observation_mentions_input_only_modules(self, fig2_report):
        text = " ".join(fig2_report.observations)
        assert "A, C" in text

    def test_signal_candidates_exclude_boundary_signals(self, fig2_report):
        candidate_names = {c.signal for c in fig2_report.edm_signals}
        assert "sys_out" not in candidate_names
        assert "ext_a" not in candidate_names
        assert "sys_out" in fig2_report.excluded_signals
        assert "ext_a" in fig2_report.excluded_signals

    def test_signal_candidates_sorted_by_exposure(self, fig2_report):
        exposures = [c.exposure for c in fig2_report.edm_signals]
        # The shortlist is exposure-sorted; an appended reach-based pick
        # may break monotonicity only at the tail.
        head = exposures[: max(1, len(exposures) - 1)]
        assert head == sorted(head, reverse=True)

    def test_barrier_modules_ob6(self, fig2_report):
        assert fig2_report.barrier_modules == ["A", "C", "E"]

    def test_render_contains_sections(self, fig2_report):
        text = fig2_report.render()
        for heading in (
            "EDM module candidates",
            "ERM module candidates",
            "EDM signal candidates",
            "Input-barrier modules",
            "Observations",
        ):
            assert heading in text


class TestArrestmentPlacement:
    """OB-level shape assertions on the target system."""

    @pytest.fixture()
    def report(self):
        from repro.arrestment import build_arrestment_model

        system = build_arrestment_model()
        # Plausible hand-set permeabilities reflecting the paper's
        # qualitative findings (PRES_S blocked, stopped blocked, CLOCK
        # slot feedback certain, V_REG/PRES_A highly permeable).
        values = {}
        for module, input_signal, output_signal in system.pair_index():
            if module == "PRES_S":
                value = 0.0
            elif output_signal == "stopped":
                value = 0.0
            elif output_signal == "mscnt":
                value = 0.0
            elif module == "CLOCK":
                value = 1.0
            elif module == "V_REG":
                value = 0.9
            elif module == "PRES_A":
                value = 0.86
            elif module == "CALC":
                value = 0.5
            else:  # DIST_S
                value = 0.3 if output_signal == "pulscnt" else 0.1
            values[(module, input_signal, output_signal)] = value
        matrix = PermeabilityMatrix.from_dict(system, values)
        return PlacementAdvisor(matrix).report()

    def test_ob1_no_exposure_modules(self, report):
        modules = {item.module for item in report.edm_modules}
        assert "DIST_S" not in modules
        assert "PRES_S" not in modules

    def test_ob1_calc_and_vreg_lead(self, report):
        leaders = [item.module for item in report.edm_modules[:2]]
        assert set(leaders) == {"CALC", "V_REG"}

    def test_ob4_selects_core_signals(self, report):
        """SetValue, OutValue and pulscnt are the paper's EDM picks."""
        names = {c.signal for c in report.edm_signals}
        assert "SetValue" in names
        assert "OutValue" in names
        assert "pulscnt" in names

    def test_ob4_excludes_hardware_output_and_mscnt(self, report):
        assert "TOC2" in report.excluded_signals
        assert "mscnt" in report.excluded_signals

    def test_ob5_bottleneck_signals(self, report):
        """SetValue and OutValue lie on all non-zero TOC2 paths... as
        does InValue's producer chain — but InValue pairs are zero, so
        only the SetValue/OutValue corridor remains."""
        names = {c.signal for c in report.bottleneck_signals}
        assert "OutValue" in names
        assert "SetValue" in names

    def test_ob6_barriers(self, report):
        assert set(report.barrier_modules) == {"DIST_S", "PRES_S"}
