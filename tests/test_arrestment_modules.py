"""Unit tests for the six software modules of the target system."""

from __future__ import annotations

import pytest

from repro.arrestment.calc import CalcModule
from repro.arrestment.clock import ClockModule
from repro.arrestment.constants import (
    CHECKPOINT_PULSES,
    SLOW_DEBOUNCE_MS,
    SLOW_INTERVAL_TICKS,
    SLOW_SET_VALUE,
    STOP_WINDOW_MS,
    TOTAL_PULSES,
)
from repro.arrestment.dist_s import DistanceSensorModule
from repro.arrestment.pres_a import PressureActuatorModule
from repro.arrestment.pres_s import PressureSensorModule
from repro.arrestment.v_reg import ValveRegulatorModule


class TestClock:
    def test_mscnt_counts_from_internal_state(self):
        clock = ClockModule()
        out = clock.activate({"ms_slot_nbr": 0}, 0)
        assert out["mscnt"] == 1
        out = clock.activate({"ms_slot_nbr": out["ms_slot_nbr"]}, 1)
        assert out["mscnt"] == 2

    def test_slot_increments_mod_7(self):
        clock = ClockModule()
        assert clock.activate({"ms_slot_nbr": 5}, 0)["ms_slot_nbr"] == 6
        assert clock.activate({"ms_slot_nbr": 6}, 1)["ms_slot_nbr"] == 0

    def test_slot_error_persists(self):
        """The source of the paper's P^CLOCK[slot->slot] = 1.000: the
        counter is incremented from its own previous value, so a
        corrupted value never re-converges."""
        clock = ClockModule()
        golden, faulty = 3, 3 ^ 0x2000
        for step in range(32):
            golden = clock.activate({"ms_slot_nbr": golden}, step)["ms_slot_nbr"]
        clock.reset()
        for step in range(32):
            faulty = clock.activate({"ms_slot_nbr": faulty}, step)["ms_slot_nbr"]
        assert golden != faulty

    def test_mscnt_independent_of_slot_errors(self):
        a, b = ClockModule(), ClockModule()
        out_a = [a.activate({"ms_slot_nbr": 0}, t)["mscnt"] for t in range(5)]
        out_b = [b.activate({"ms_slot_nbr": 0x8000}, t)["mscnt"] for t in range(5)]
        assert out_a == out_b

    def test_mscnt_wraps_16_bit(self):
        clock = ClockModule()
        clock._mscnt = 0xFFFF
        assert clock.activate({"ms_slot_nbr": 0}, 0)["mscnt"] == 0

    def test_reset(self):
        clock = ClockModule()
        clock.activate({"ms_slot_nbr": 0}, 0)
        clock.reset()
        assert clock.activate({"ms_slot_nbr": 0}, 0)["mscnt"] == 1

    def test_bad_slot_count_rejected(self):
        with pytest.raises(ValueError):
            ClockModule(n_slots=0)


def feed_dist(dist: DistanceSensorModule, samples):
    """Feed (PACNT, TIC1, TCNT) tuples; return the last output."""
    out = None
    for t, (pacnt, tic1, tcnt) in enumerate(samples):
        out = dist.activate({"PACNT": pacnt, "TIC1": tic1, "TCNT": tcnt}, t)
    return out


class TestDistS:
    def test_pulscnt_accumulates_deltas(self):
        dist = DistanceSensorModule()
        out = feed_dist(
            dist,
            [(0, 0, 0), (3, 500, 2000), (7, 900, 4000)],
        )
        assert out["pulscnt"] == 7

    def test_pulscnt_wrap_safe(self):
        """PACNT wrapping at 16 bits must not corrupt the total."""
        dist = DistanceSensorModule()
        out = feed_dist(dist, [(0xFFFE, 0, 0), (2, 100, 2000)])
        assert out["pulscnt"] == 4  # 0xFFFE->2 is a delta of 4

    def test_fast_rotation_not_slow(self):
        dist = DistanceSensorModule()
        samples = [(t * 2, 2000 * t, 2000 * t) for t in range(20)]
        out = feed_dist(dist, samples)
        assert out["slow_speed"] == 0
        assert out["stopped"] == 0

    def test_slow_rotation_asserts_slow_speed(self):
        dist = DistanceSensorModule()
        # One pulse every 20 ms: interval 40_000 ticks > threshold.
        samples = []
        for t in range(200):
            pulses = t // 20
            tic1 = (pulses * 20 * 2000) & 0xFFFF
            samples.append((pulses, tic1, (t * 2000) & 0xFFFF))
        out = feed_dist(dist, samples)
        assert out["slow_speed"] == 1

    def test_stopped_after_window(self):
        dist = DistanceSensorModule()
        samples = [(5, 100, 100)] + [
            (5, 100, (100 + 2000 * t) & 0xFFFF) for t in range(STOP_WINDOW_MS + 10)
        ]
        out = feed_dist(dist, samples)
        assert out["stopped"] == 1
        assert out["slow_speed"] == 1

    def test_single_pulse_resets_stop_counter(self):
        dist = DistanceSensorModule()
        samples = [(0, 0, 0)]
        samples += [(0, 0, 2000 * t) for t in range(1, STOP_WINDOW_MS - 5)]
        samples.append((1, 50, (2000 * STOP_WINDOW_MS) & 0xFFFF))
        samples += [(1, 50, (2000 * (STOP_WINDOW_MS + t)) & 0xFFFF) for t in range(5)]
        out = feed_dist(dist, samples)
        assert out["stopped"] == 0

    def test_transient_gap_spike_debounced(self):
        """A single corrupted TIC1 read cannot assert slow_speed through
        the debounce (OB2's built-in resiliency)."""
        dist = DistanceSensorModule()
        good = [(t * 2, (t * 2 * 1000) & 0xFFFF, (t * 2000) & 0xFFFF) for t in range(10)]
        feed_dist(dist, good)
        # One corrupted sample with a huge gap, then good samples again.
        out = dist.activate({"PACNT": 20, "TIC1": 0, "TCNT": 30000}, 10)
        assert out["slow_speed"] == 0

    def test_reset_clears_state(self):
        dist = DistanceSensorModule()
        feed_dist(dist, [(100, 0, 0)])
        dist.reset()
        out = feed_dist(dist, [(100, 0, 0)])
        assert out["pulscnt"] == 0  # first sample only initialises


class TestPresS:
    def run_stream(self, pres, samples):
        outputs = []
        for t, sample in enumerate(samples):
            outputs.append(pres.activate({"ADC": sample}, t * 7)["InValue"])
        return outputs

    def test_passes_steady_value_quantised(self):
        pres = PressureSensorModule()
        outputs = self.run_stream(pres, [10000] * 20)
        # 10000 rounds to the nearest 512 grid point.
        assert outputs[-1] == round(10000 / 512) * 512
        assert len(set(outputs)) == 1

    def test_single_outlier_rejected_any_bit(self):
        """The median-of-5 vote absorbs any single corrupted sample:
        the output stream is identical with and without corruption."""
        golden = PressureSensorModule()
        reference = self.run_stream(golden, [10000] * 30)
        for bit in range(16):
            pres = PressureSensorModule()
            samples = [10000] * 30
            samples[12] = 10000 ^ (1 << bit)
            assert self.run_stream(pres, samples) == reference, bit

    def test_small_jitter_quantised_away(self):
        pres = PressureSensorModule()
        jittery = [10000 + (t % 3) * 10 for t in range(30)]
        outputs = self.run_stream(pres, jittery)
        assert len(set(outputs)) == 1

    def test_tracks_genuine_ramp(self):
        pres = PressureSensorModule()
        outputs = self.run_stream(pres, [t * 2000 for t in range(40)])
        # Staleness is bounded by the update period plus median depth
        # (and one quantisation step).
        assert outputs[-1] >= (40 - 10) * 2000 - 512

    def test_updates_only_on_schedule(self):
        """InValue changes only at fixed activation multiples — timing
        robustness under exact Golden Run Comparison."""
        pres = PressureSensorModule()
        outputs = self.run_stream(pres, [t * 1000 for t in range(33)])
        change_points = [
            index
            for index in range(1, len(outputs))
            if outputs[index] != outputs[index - 1]
        ]
        assert change_points
        assert all(index % 8 == 0 for index in change_points)

    def test_outlier_during_ramp_bounded(self):
        """During a ramp a surviving outlier can shift the median by at
        most one order statistic (one sample step), transiently."""
        ramp = [t * 500 for t in range(40)]
        reference = self.run_stream(PressureSensorModule(), list(ramp))
        corrupted_samples = list(ramp)
        corrupted_samples[20] ^= 0x4000
        corrupted = self.run_stream(PressureSensorModule(), corrupted_samples)
        deviations = [abs(a - b) for a, b in zip(corrupted, reference)]
        assert max(deviations) <= 500 + 512  # one step + one grid cell
        # The deviation window is bounded by the median depth plus one
        # update period: afterwards the streams re-converge.
        assert corrupted[33:] == reference[33:]

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            PressureSensorModule(quant=0)
        with pytest.raises(ValueError):
            PressureSensorModule(update_period=0)


class TestCalc:
    def idle_inputs(self, **overrides):
        inputs = {
            "i": 0,
            "mscnt": 100,
            "pulscnt": 0,
            "slow_speed": 0,
            "stopped": 0,
        }
        inputs.update(overrides)
        return inputs

    def test_no_setvalue_before_first_checkpoint(self):
        calc = CalcModule()
        out = calc.activate(self.idle_inputs(), 0)
        assert out == {"i": 0}

    def test_checkpoint_crossing_increments_i_and_sets_value(self):
        calc = CalcModule()
        out = calc.activate(
            self.idle_inputs(pulscnt=CHECKPOINT_PULSES[0], mscnt=50), 0
        )
        assert out["i"] == 1
        assert out["SetValue"] > 0

    def test_set_point_decreases_with_remaining_distance(self):
        fresh = CalcModule()
        early = fresh.activate(
            self.idle_inputs(pulscnt=CHECKPOINT_PULSES[0], mscnt=50), 0
        )["SetValue"]
        late = CalcModule()
        late.activate(self.idle_inputs(pulscnt=CHECKPOINT_PULSES[0], mscnt=50), 0)
        # Same velocity later on the runway demands more pressure.
        out = late.activate(
            self.idle_inputs(
                i=4, pulscnt=CHECKPOINT_PULSES[4], mscnt=CHECKPOINT_PULSES[4] * 50 // CHECKPOINT_PULSES[0]
            ),
            1,
        )
        assert out["SetValue"] > early

    def test_faster_aircraft_gets_more_pressure(self):
        slow = CalcModule().activate(
            self.idle_inputs(pulscnt=CHECKPOINT_PULSES[0], mscnt=80), 0
        )["SetValue"]
        fast = CalcModule().activate(
            self.idle_inputs(pulscnt=CHECKPOINT_PULSES[0], mscnt=30), 0
        )["SetValue"]
        assert fast > slow

    def test_set_value_clamped_to_16_bit(self):
        calc = CalcModule()
        out = calc.activate(
            self.idle_inputs(pulscnt=TOTAL_PULSES - 10, mscnt=1), 0
        )
        assert out["SetValue"] <= 0xFFFF

    def test_all_checkpoints_exhausted(self):
        calc = CalcModule()
        out = calc.activate(self.idle_inputs(i=6, pulscnt=TOTAL_PULSES), 0)
        assert out == {"i": 6}

    def test_slow_speed_holds_gentle_pull(self):
        calc = CalcModule()
        out = calc.activate(self.idle_inputs(slow_speed=1, i=6), 0)
        assert out["SetValue"] == SLOW_SET_VALUE
        assert out["i"] == 6

    def test_stopped_releases_pressure(self):
        calc = CalcModule()
        out = calc.activate(self.idle_inputs(stopped=1, slow_speed=1, i=6), 0)
        assert out["SetValue"] == 0

    def test_nonzero_flag_bits_treated_as_true(self):
        """Flags are C-style truthy words: any set bit counts."""
        calc = CalcModule()
        out = calc.activate(self.idle_inputs(stopped=0x8000), 0)
        assert out["SetValue"] == 0

    def test_corrupted_i_feedback_passes_through(self):
        calc = CalcModule()
        out = calc.activate(self.idle_inputs(i=9999), 0)
        assert out["i"] == 9999

    def test_degenerate_deltas_guarded(self):
        calc = CalcModule()
        # mscnt going backwards (corruption) must not divide by zero or
        # produce negative set points.
        out = calc.activate(self.idle_inputs(pulscnt=CHECKPOINT_PULSES[0], mscnt=0), 0)
        assert out["SetValue"] >= 0

    def test_requires_checkpoints(self):
        with pytest.raises(ValueError):
            CalcModule(checkpoints=())


class TestVReg:
    def test_converges_to_set_point_through_plant_lag(self):
        """Closed loop against a first-order plant (the valve lag of the
        real system, tau = 50 ms at a 7 ms activation period)."""
        vreg = ValveRegulatorModule()
        measured = 0.0
        for _ in range(300):
            drive = vreg.activate(
                {"SetValue": 20000, "InValue": round(measured)}, 0
            )["OutValue"]
            measured += (drive - measured) * (7.0 / 50.0)
        assert measured == pytest.approx(20000, abs=200)

    def test_drive_clamped(self):
        vreg = ValveRegulatorModule()
        out = vreg.activate({"SetValue": 0xFFFF, "InValue": 0}, 0)
        assert 0 <= out["OutValue"] <= 0xFFFF
        vreg.reset()
        out = vreg.activate({"SetValue": 0, "InValue": 0xFFFF}, 0)
        assert out["OutValue"] == 0

    def test_integral_antiwindup(self):
        vreg = ValveRegulatorModule()
        for _ in range(1000):
            vreg.activate({"SetValue": 0xFFFF, "InValue": 0}, 0)
        # After removing the error, the drive must unwind promptly
        # rather than staying pegged for thousands of activations.
        outputs = [
            vreg.activate({"SetValue": 0, "InValue": 0xFFFF}, 0)["OutValue"]
            for _ in range(40)
        ]
        assert outputs[-1] == 0

    def test_reset_clears_integrator(self):
        vreg = ValveRegulatorModule()
        for _ in range(50):
            vreg.activate({"SetValue": 30000, "InValue": 0}, 0)
        vreg.reset()
        fresh = ValveRegulatorModule()
        assert (
            vreg.activate({"SetValue": 100, "InValue": 0}, 0)
            == fresh.activate({"SetValue": 100, "InValue": 0}, 0)
        )

    def test_bad_gains_rejected(self):
        with pytest.raises(ValueError):
            ValveRegulatorModule(kp=-1)
        with pytest.raises(ValueError):
            ValveRegulatorModule(ki_shift=-1)


class TestPresA:
    def test_quantises_low_bits(self):
        pres_a = PressureActuatorModule()
        out = pres_a.activate({"OutValue": 0x1234 | 0x3}, 0)
        assert out["TOC2"] == 0x1234
        assert pres_a.activate({"OutValue": 0x1234}, 0)["TOC2"] == 0x1234

    def test_full_scale_passthrough(self):
        pres_a = PressureActuatorModule()
        assert pres_a.activate({"OutValue": 0xFFFF}, 0)["TOC2"] == 0xFFFC

    def test_custom_mask(self):
        pres_a = PressureActuatorModule(quant_mask=0xFF00)
        assert pres_a.activate({"OutValue": 0x12FF}, 0)["TOC2"] == 0x1200
