"""The SimulationBackend protocol and the batched lane kernel.

The batched backend's contract is byte-identity with the reference
frame-stepping runtime: same traces, same outcomes, same reconvergence
instants, in the same grid order.  These tests pin that contract on
generated XOR-mask systems (fully vectorized), mixed systems with an
opaque module (scalar per-lane fallback), the arrestment plant (full
per-run reference fallback) and hypothesis-drawn random systems.
"""

from __future__ import annotations

import dataclasses
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injection.campaign import CampaignConfig, CampaignError, InjectionCampaign
from repro.injection.error_models import BitFlip, DoubleBitFlip, StuckAtOne
from repro.model.errors import SimulationError
from repro.simulation.backend import (
    ReferenceBackend,
    SimulationBackend,
    UnknownBackendError,
    available_backends,
    get_backend,
)
from repro.verify.generators import GeneratedSystem, generate_system
from repro.verify.oracles import default_campaign, run_digest

from .strategies import generated_executable_systems

np = pytest.importorskip("numpy")

from repro.simulation.batched import (  # noqa: E402 — needs numpy
    BatchedBackend,
    column_to_samples,
    pack_state_row,
    unpack_state_row,
)


def _mixed_system(seed: int = 13) -> GeneratedSystem:
    """A generated system with every other module hidden from the vectorizer."""
    base = generate_system(seed)
    modules = tuple(
        dataclasses.replace(m, opaque=(index % 2 == 1))
        for index, m in enumerate(base.spec.modules)
    )
    return GeneratedSystem(dataclasses.replace(base.spec, modules=modules))


def _campaign(generated, backend, **overrides):
    config = CampaignConfig(
        duration_ms=overrides.pop("duration_ms", 200),
        injection_times_ms=overrides.pop("injection_times_ms", (30, 110)),
        error_models=overrides.pop(
            "error_models", (BitFlip(0), BitFlip(3), DoubleBitFlip(1, 2))
        ),
        seed=5,
        backend=backend,
        **overrides,
    )
    return InjectionCampaign(
        generated.system, generated.run_factory, ["case"], config
    )


def _collect(generated, backend, **overrides):
    """Every (outcome, RunResult) pair of a campaign, in grid order."""
    pairs = []
    _campaign(generated, backend, **overrides).execute(
        inspector=lambda outcome, injected, golden: pairs.append(
            (outcome, injected)
        )
    )
    return pairs


def _assert_identical(reference, batched):
    assert len(reference) == len(batched)
    for (ref_out, ref_run), (bat_out, bat_run) in zip(reference, batched):
        key = (
            ref_out.module,
            ref_out.input_signal,
            ref_out.scheduled_time_ms,
            ref_out.error_model,
        )
        assert key == (
            bat_out.module,
            bat_out.input_signal,
            bat_out.scheduled_time_ms,
            bat_out.error_model,
        ), "grid order diverged"
        assert ref_out.fired_at_ms == bat_out.fired_at_ms, key
        assert ref_out.comparison.first_divergence_ms == (
            bat_out.comparison.first_divergence_ms
        ), key
        assert ref_run.reconverged_at_ms == bat_run.reconverged_at_ms, key
        assert ref_run.frames_fast_forwarded == (
            bat_run.frames_fast_forwarded
        ), key
        assert ref_run.final_signals == bat_run.final_signals, key
        assert ref_run.telemetry == bat_run.telemetry, key
        assert run_digest(ref_run) == run_digest(bat_run), key


# ---------------------------------------------------------------------------
# Lane packing
# ---------------------------------------------------------------------------


class TestLanePacking:
    def test_pack_unpack_round_trip(self):
        signals = ("a", "b", "c")
        values = {"a": 7, "b": 0, "c": 0xFFFF}
        row = pack_state_row(values, signals)
        assert row.dtype == np.int64
        assert row.shape == (3,)
        assert unpack_state_row(row, signals) == values

    def test_unpack_returns_python_ints(self):
        row = pack_state_row({"a": 3}, ("a",))
        value = unpack_state_row(row, ("a",))["a"]
        assert type(value) is int  # numpy ints break state digests

    def test_pack_respects_signal_order(self):
        row = pack_state_row({"b": 2, "a": 1}, ("a", "b"))
        assert list(row) == [1, 2]

    def test_column_to_samples_matches_array_q(self):
        column = np.array([0, 1, 2**40, 9], dtype=np.int64)
        samples = column_to_samples(column)
        assert samples == array("q", [0, 1, 2**40, 9])

    def test_column_to_samples_accepts_strided_views(self):
        matrix = np.arange(12, dtype=np.int64).reshape(4, 3)
        assert column_to_samples(matrix[:, 1]) == array("q", [1, 4, 7, 10])


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------


class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ("reference", "batched")

    def test_get_backend_instances(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("batched"), BatchedBackend)
        assert isinstance(get_backend("batched"), SimulationBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError, match="warp-drive"):
            get_backend("warp-drive")
        assert issubclass(UnknownBackendError, SimulationError)

    def test_campaign_config_rejects_unknown_backend(self):
        with pytest.raises(CampaignError, match="unknown simulation backend"):
            CampaignConfig(
                duration_ms=100,
                injection_times_ms=(10,),
                error_models=(BitFlip(0),),
                backend="warp-drive",
            )

    def test_env_var_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "batched")
        config = CampaignConfig(
            duration_ms=100,
            injection_times_ms=(10,),
            error_models=(BitFlip(0),),
        )
        assert config.backend == "batched"

    def test_explicit_backend_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "batched")
        config = CampaignConfig(
            duration_ms=100,
            injection_times_ms=(10,),
            error_models=(BitFlip(0),),
            backend="reference",
        )
        assert config.backend == "reference"


# ---------------------------------------------------------------------------
# Byte-identity with the reference runtime
# ---------------------------------------------------------------------------


class TestBatchedIdentity:
    def test_fully_vectorized_system(self):
        generated = generate_system(seed=7)
        _assert_identical(
            _collect(generated, "reference"), _collect(generated, "batched")
        )

    def test_mixed_opaque_modules_use_scalar_fallback(self):
        generated = _mixed_system()
        _assert_identical(
            _collect(generated, "reference"), _collect(generated, "batched")
        )

    def test_non_xor_models_fall_back_per_run(self):
        generated = generate_system(seed=7)
        models = (BitFlip(0), StuckAtOne(1))  # StuckAtOne is not XOR-able
        _assert_identical(
            _collect(generated, "reference", error_models=models),
            _collect(generated, "batched", error_models=models),
        )

    def test_without_fast_forward(self):
        generated = generate_system(seed=3)
        _assert_identical(
            _collect(generated, "reference", fast_forward=False),
            _collect(generated, "batched", fast_forward=False),
        )

    def test_without_prefix_reuse(self):
        generated = generate_system(seed=3)
        overrides = dict(reuse_golden_prefix=False, fast_forward=False)
        _assert_identical(
            _collect(generated, "reference", **overrides),
            _collect(generated, "batched", **overrides),
        )

    def test_arrestment_full_fallback(self):
        """A non-lane-invariant environment routes every run to reference."""
        from repro.arrestment import build_arrestment_model, build_arrestment_run
        from repro.arrestment.testcases import ArrestmentTestCase

        def run(backend):
            config = CampaignConfig(
                duration_ms=1500,
                injection_times_ms=(400, 900),
                error_models=(BitFlip(0), BitFlip(4)),
                seed=9,
                backend=backend,
            )
            campaign = InjectionCampaign(
                build_arrestment_model(),
                build_arrestment_run,
                {"case": ArrestmentTestCase(mass_kg=14000.0, velocity_ms=60.0)},
                config,
            )
            pairs = []
            campaign.execute(
                inspector=lambda o, injected, g: pairs.append((o, injected))
            )
            return pairs

        _assert_identical(run("reference"), run("batched"))

    def test_per_lane_retirement_matches_reference_and_splices_golden(self):
        """Lanes retire individually; retired traces end on the golden suffix."""
        generated = generate_system(seed=7)
        reference = _collect(generated, "reference")
        batched = _collect(generated, "batched")
        _assert_identical(reference, batched)
        retirements = {
            run.reconverged_at_ms
            for _, run in batched
            if run.reconverged_at_ms is not None
        }
        assert len(retirements) > 1, (
            "workload too easy: every reconverging lane retired at the "
            "same frame, so per-lane retirement was not exercised"
        )
        golden = generated.build_run().run(200)
        for _, run in batched:
            if run.reconverged_at_ms is None:
                continue
            for signal in run.traces.signals:
                suffix = run.traces[signal].samples[run.reconverged_at_ms + 1:]
                assert suffix == (
                    golden.traces[signal].samples[run.reconverged_at_ms + 1:]
                )

    @settings(max_examples=10, deadline=None)
    @given(generated_executable_systems(), st.integers(0, 2**8))
    def test_random_systems_are_backend_invariant(self, generated, seed):
        campaign = default_campaign(generated)
        overrides = dict(
            duration_ms=campaign.duration_ms,
            injection_times_ms=campaign.injection_times_ms,
            error_models=tuple(
                BitFlip(bit) for bit in range(min(4, campaign.n_bits))
            ),
        )
        _assert_identical(
            _collect(generated, "reference", **overrides),
            _collect(generated, "batched", **overrides),
        )


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestBackendObservability:
    def _execute(self, backend):
        from repro.obs import CampaignObserver

        generated = generate_system(seed=7)
        observer = CampaignObserver.to_files(
            events_path=None, with_metrics=True, system=generated.system
        )
        campaign = InjectionCampaign(
            generated.system,
            generated.run_factory,
            ["case"],
            CampaignConfig(
                duration_ms=120,
                injection_times_ms=(30,),
                error_models=(BitFlip(0), BitFlip(1)),
                seed=5,
                backend=backend,
            ),
            observer=observer,
        )
        campaign.execute()
        return observer

    def test_backend_selected_event_and_manifest(self):
        observer = self._execute("batched")
        events = observer.events._sink.events()
        types = [parsed.type_name for parsed in events]
        assert types[0] == "CampaignStarted"
        assert types[1] == "BackendSelected"
        assert events[1].event.backend == "batched"
        assert events[0].event.manifest["backend"] == "batched"

    def test_backend_participates_in_config_hash(self):
        reference = self._execute("reference")
        batched = self._execute("batched")
        hashes = {
            obs.events._sink.events()[0].event.manifest["config_hash"]
            for obs in (reference, batched)
        }
        assert len(hashes) == 2

    def test_kernel_metrics_recorded(self):
        metrics = self._execute("batched").metrics
        assert metrics.counter("kernel.lanes.retired").value > 0
        assert metrics.histogram("kernel.batch_step.seconds").count > 0

    def test_fallback_counter_on_arrestment(self):
        from repro.arrestment import build_arrestment_model, build_arrestment_run
        from repro.arrestment.testcases import ArrestmentTestCase
        from repro.obs import CampaignObserver

        system = build_arrestment_model()
        observer = CampaignObserver.to_files(
            events_path=None, with_metrics=True, system=system
        )
        InjectionCampaign(
            system,
            build_arrestment_run,
            {"case": ArrestmentTestCase(mass_kg=14000.0, velocity_ms=60.0)},
            CampaignConfig(
                duration_ms=800,
                injection_times_ms=(300,),
                error_models=(BitFlip(0),),
                backend="batched",
            ),
            observer=observer,
        ).execute()
        assert observer.metrics.counter("kernel.fallback.runs").value > 0
