"""Unit tests for the runtime (signal store, dispatch, hooks, tracing)."""

from __future__ import annotations

import pytest

from repro.model.errors import SimulationError, UnknownSignalError
from repro.simulation.runtime import SignalStore, SimulationRun
from repro.simulation.scheduler import SlotSchedule

from tests.conftest import AmpModule, FiltModule, RampEnvironment


class TestSignalStore:
    def test_initial_values(self, toy_model):
        store = SignalStore(toy_model)
        assert store.read("src") == 0

    def test_write_wraps_to_width(self, toy_model):
        store = SignalStore(toy_model)
        store.write("src", 0x1_2345)
        assert store.read("src") == 0x2345

    def test_unknown_signal_read(self, toy_model):
        with pytest.raises(UnknownSignalError):
            SignalStore(toy_model).read("ghost")

    def test_unknown_signal_write(self, toy_model):
        with pytest.raises(UnknownSignalError):
            SignalStore(toy_model).write("ghost", 1)

    def test_reset(self, toy_model):
        store = SignalStore(toy_model)
        store.write("src", 99)
        store.reset()
        assert store.read("src") == 0

    def test_snapshot_is_a_copy(self, toy_model):
        store = SignalStore(toy_model)
        snapshot = store.snapshot()
        store.write("src", 1)
        assert snapshot["src"] == 0


class TestSimulationRunConstruction:
    def test_duplicate_module_instance_rejected(self, toy_model):
        with pytest.raises(SimulationError):
            SimulationRun(
                system=toy_model,
                modules=[FiltModule(), FiltModule()],
                schedule=SlotSchedule(1),
                environment=RampEnvironment(),
            )

    def test_undeclared_module_rejected(self, toy_model):
        class Rogue(FiltModule):
            def __init__(self):
                super().__init__()
                object.__setattr__(self._spec, "name", "ROGUE")

        schedule = SlotSchedule(1)
        with pytest.raises(SimulationError):
            SimulationRun(
                system=toy_model,
                modules=[Rogue()],
                schedule=schedule,
                environment=RampEnvironment(),
            )

    def test_scheduled_module_needs_instance(self, toy_model):
        schedule = SlotSchedule(1)
        schedule.assign_every_slot("FILT")
        schedule.assign_every_slot("AMP")
        with pytest.raises(SimulationError):
            SimulationRun(
                system=toy_model,
                modules=[FiltModule()],
                schedule=schedule,
                environment=RampEnvironment(),
            )

    def test_unknown_slot_signal_rejected(self, toy_model):
        schedule = SlotSchedule(1)
        with pytest.raises(UnknownSignalError):
            SimulationRun(
                system=toy_model,
                modules=[FiltModule(), AmpModule()],
                schedule=schedule,
                environment=RampEnvironment(),
                slot_signal="ghost",
            )

    def test_unknown_trace_signal_rejected(self, toy_model):
        with pytest.raises(UnknownSignalError):
            SimulationRun(
                system=toy_model,
                modules=[FiltModule(), AmpModule()],
                schedule=SlotSchedule(1),
                environment=RampEnvironment(),
                trace_signals=["ghost"],
            )


class TestExecution:
    def test_dataflow_through_chain(self, toy_run):
        result = toy_run.run(10)
        # Ramp step 3: at millisecond t (0-based) src = 3*(t+1).
        assert result.traces["src"][4] == 15
        assert result.traces["filt"][4] == 15 & 0xFF00
        assert result.traces["out"][4] == 15 & 0xFF00

    def test_trace_lengths(self, toy_run):
        result = toy_run.run(25)
        assert result.duration_ms == 25
        assert result.traces.duration_ms == 25
        for trace in result.traces:
            assert len(trace) == 25

    def test_runs_are_independent(self, toy_run):
        first = toy_run.run(20)
        second = toy_run.run(20)
        assert first.traces["out"].samples == second.traces["out"].samples

    def test_final_signals_snapshot(self, toy_run):
        result = toy_run.run(10)
        assert result.final_signals["src"] == 30

    def test_telemetry_passthrough(self, toy_run):
        result = toy_run.run(10)
        assert result.telemetry == {"value": 30.0}

    def test_zero_duration_rejected(self, toy_run):
        with pytest.raises(SimulationError):
            toy_run.run(0)

    def test_trace_subset(self, toy_model):
        schedule = SlotSchedule(1)
        schedule.assign_every_slot("FILT")
        schedule.assign_every_slot("AMP")
        run = SimulationRun(
            system=toy_model,
            modules=[FiltModule(), AmpModule()],
            schedule=schedule,
            environment=RampEnvironment(),
            trace_signals=["out"],
        )
        result = run.run(5)
        assert result.traces.signals == ("out",)

    def test_undeclared_output_write_rejected(self, toy_model):
        class Leaky(FiltModule):
            def activate(self, inputs, now_ms):
                return {"out": 1}  # not FILT's output

        schedule = SlotSchedule(1)
        schedule.assign_every_slot("FILT")
        run = SimulationRun(
            system=toy_model,
            modules=[Leaky(), AmpModule()],
            schedule=schedule,
            environment=RampEnvironment(),
        )
        with pytest.raises(SimulationError):
            run.run(1)


class TestHooks:
    def test_read_interceptor_is_consumer_scoped(self, toy_run):
        class ForceValue:
            def on_read(self, module, signal, value, now_ms):
                if module == "AMP" and signal == "filt":
                    return 0xAA00
                return value

        toy_run.add_read_interceptor(ForceValue())
        result = toy_run.run(5)
        # AMP saw the forced value; the stored filt signal did not.
        assert result.traces["out"][3] == 0xAA00
        assert result.traces["filt"][3] != 0xAA00

    def test_store_mutator_visible_to_all(self, toy_run):
        class ForceSrc:
            def apply(self, store, now_ms):
                if now_ms == 3:
                    store.write("src", 0xFFFF)

        toy_run.add_store_mutator(ForceSrc())
        result = toy_run.run(5)
        assert result.traces["src"][3] == 0xFFFF
        assert result.traces["filt"][3] == 0xFF00

    def test_clear_hooks(self, toy_run):
        class Bomb:
            def on_read(self, module, signal, value, now_ms):
                raise AssertionError("should have been cleared")

        toy_run.add_read_interceptor(Bomb())
        toy_run.clear_hooks()
        toy_run.run(3)  # must not raise

    def test_interceptors_chain_in_order(self, toy_run):
        class Add1:
            def on_read(self, module, signal, value, now_ms):
                return value + 1 if module == "AMP" else value

        class Double:
            def on_read(self, module, signal, value, now_ms):
                return value * 2 if module == "AMP" else value

        toy_run.add_read_interceptor(Add1())
        toy_run.add_read_interceptor(Double())
        result = toy_run.run(1)
        # src=3 -> filt=0; AMP reads (0+1)*2 = 2.
        assert result.traces["out"][0] == 2


class TestSlotSignalDispatch:
    def test_slot_driven_by_signal(self):
        """A module whose slot counter it corrupts reschedules itself."""
        from repro.arrestment import build_arrestment_run

        run = build_arrestment_run()
        result = run.run(21)
        # ms_slot_nbr cycles 1..0 (incremented each ms, mod 7).
        slots = list(result.traces["ms_slot_nbr"].samples[:14])
        assert slots == [(t + 1) % 7 for t in range(14)]
