"""Unit and property tests for the executable-system generator."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_system
from repro.verify import (
    GeneratedModule,
    GeneratedSystem,
    GeneratedSystemSpec,
    SpecError,
    analytical_matrix,
    generate_system,
)
from repro.verify.oracles import default_campaign

from tests.strategies import generated_executable_systems
from tests.verify_cases import small_passing_triple


class TestDeterminism:
    def test_same_seed_same_spec(self):
        assert generate_system(7).spec == generate_system(7).spec

    def test_different_seeds_differ(self):
        specs = {
            json.dumps(generate_system(seed).spec.to_jsonable(), sort_keys=True)
            for seed in range(20)
        }
        assert len(specs) == 20

    def test_runs_are_reproducible(self):
        generated = generate_system(11)
        first = generated.build_run().run(20)
        second = generated.build_run().run(20)
        assert first.final_signals == second.final_signals
        assert first.telemetry == second.telemetry


class TestGeneratedShape:
    def test_first_seeds_cover_feedback_and_acyclic(self):
        flags = {generate_system(seed).has_feedback for seed in range(10)}
        assert flags == {True, False}

    @settings(max_examples=25, deadline=None)
    @given(generated_executable_systems())
    def test_generated_systems_lint_clean_at_error_severity(self, generated):
        report = lint_system(generated.system)
        assert not report.has_errors, report.render_text()

    @settings(max_examples=25, deadline=None)
    @given(generated_executable_systems())
    def test_generated_systems_are_runnable(self, generated):
        duration = default_campaign(generated).duration_ms
        result = generated.build_run().run(duration)
        assert result.duration_ms == duration
        assert "env_out_checksum" in result.telemetry

    @settings(max_examples=25, deadline=None)
    @given(generated_executable_systems())
    def test_analytical_matrix_is_complete_and_bounded(self, generated):
        campaign = default_campaign(generated)
        matrix = generated.analytical_matrix(campaign.n_bits)
        assert matrix.is_complete()
        for _, estimate in matrix.items():
            assert 0.0 <= estimate.value <= 1.0
            assert not estimate.is_experimental

    @settings(max_examples=25, deadline=None)
    @given(generated_executable_systems())
    def test_spec_round_trips_through_json(self, generated):
        data = generated.spec.to_jsonable()
        assert GeneratedSystemSpec.from_jsonable(data) == generated.spec


class TestSpecValidation:
    def test_rejects_two_feedback_signals(self):
        spec, _ = small_passing_triple()
        data = spec.to_jsonable()
        data["modules"][0]["inputs"] = ["in0", "out0", "out1"]
        data["modules"][0]["outputs"] = ["out0", "out1"]
        data["modules"][0]["masks"] = {
            i: {"out0": 1, "out1": 1} for i in ("in0", "out0", "out1")
        }
        data["widths"]["out1"] = 16
        with pytest.raises(SpecError, match="feedback"):
            GeneratedSystemSpec.from_jsonable(data)

    def test_rejects_missing_mask(self):
        spec, _ = small_passing_triple()
        data = spec.to_jsonable()
        data["modules"][0]["masks"] = {}
        with pytest.raises(SpecError):
            GeneratedSystemSpec.from_jsonable(data)

    def test_rejects_period_not_dividing_slots(self):
        spec, _ = small_passing_triple()
        data = spec.to_jsonable()
        data["n_slots"] = 4
        data["modules"][0]["period_ms"] = 3
        with pytest.raises(SpecError, match="period"):
            GeneratedSystemSpec.from_jsonable(data)

    def test_analytical_rejects_oversized_bit_count(self):
        spec, _ = small_passing_triple()
        with pytest.raises(SpecError, match="n_bits"):
            analytical_matrix(spec, 32)


class TestAnalyticalValues:
    def test_direct_mask_permeability(self):
        spec, campaign = small_passing_triple()
        matrix = analytical_matrix(spec, campaign.n_bits)
        # mask 0xA over the 4-bit flip band: bits 1 and 3 survive.
        assert matrix.get("M0", "in0", "out0") == pytest.approx(0.5)

    def test_output_width_truncates_the_mask(self):
        spec, _ = small_passing_triple()
        data = spec.to_jsonable()
        data["widths"]["out0"] = 2  # only bit 1 of mask 0xA survives
        narrow = GeneratedSystemSpec.from_jsonable(data)
        matrix = analytical_matrix(narrow, 4)
        assert matrix.get("M0", "in0", "out0") == pytest.approx(0.25)

    def test_feedback_detour_is_included(self):
        spec = GeneratedSystemSpec(
            name="fb",
            seed=0,
            n_slots=1,
            env_seed=1,
            widths={"in0": 8, "out0": 8, "fb": 8},
            system_inputs=("in0",),
            system_outputs=("out0",),
            modules=(
                # No direct in0->out0 path; bit 0 reaches out0 only via
                # the feedback store (in0 -> fb -> out0).
                GeneratedModule(
                    name="M0",
                    inputs=("in0", "fb"),
                    outputs=("out0", "fb"),
                    masks={
                        "in0": {"out0": 0x0, "fb": 0x1},
                        "fb": {"out0": 0x1, "fb": 0x0},
                    },
                ),
            ),
        )
        matrix = analytical_matrix(spec, 2)
        assert matrix.get("M0", "in0", "out0") == pytest.approx(0.5)
        assert matrix.get("M0", "in0", "fb") == pytest.approx(0.5)


class TestStatelessness:
    def test_mask_module_state_dict_is_empty(self):
        generated = generate_system(0)
        run = generated.build_run()
        run.run(5)
        checkpoint = run.checkpoint()
        assert all(state == {} for state in checkpoint.modules.values())


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_generated_system_wraps_spec_losslessly(seed):
    generated = generate_system(seed)
    rebuilt = GeneratedSystem(generated.spec)
    assert rebuilt.system.name == generated.system.name
    assert rebuilt.system.module_names() == generated.system.module_names()
