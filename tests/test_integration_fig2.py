"""End-to-end integration: every Fig. 2 number verified by hand.

The analytic permeabilities of the example system make every derived
quantity hand-computable; this file pins the full analysis pipeline to
those exact values, so any regression in Eqs. 1–6, the tree builders or
the path ranking shows up as a concrete numeric diff.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import PropagationAnalysis


@pytest.fixture()
def analysis(fig2_matrix):
    return PropagationAnalysis(fig2_matrix)


class TestModuleMeasuresExact:
    EXPECTED = {
        # module: (P, P-bar)
        "A": (0.8, 0.8),
        "B": (0.525, 2.1),
        "C": (1.0, 1.0),
        "D": (0.65, 1.3),
        "E": (0.4, 1.2),
    }

    def test_all_values(self, analysis):
        for module, (relative, total) in self.EXPECTED.items():
            measures = analysis.module_measures[module]
            assert measures.relative_permeability == pytest.approx(relative)
            assert measures.nonweighted_relative_permeability == pytest.approx(total)


class TestExposuresExact:
    EXPECTED = {
        # module: (X or None, X-bar)
        "A": (None, 0.0),
        "B": (1.9 / 3, 1.9),
        "C": (None, 0.0),
        "D": (2.1 / 3, 2.1),
        "E": (2.3 / 4, 2.3),
    }

    def test_all_values(self, analysis):
        for module, (mean, total) in self.EXPECTED.items():
            exposure = analysis.module_exposures[module]
            if mean is None:
                assert exposure.exposure is None
            else:
                assert exposure.exposure == pytest.approx(mean)
            assert exposure.nonweighted_exposure == pytest.approx(total)


class TestSignalExposuresExact:
    EXPECTED = {
        "sys_out": 1.2,
        "b2": 1.0,
        "d1": 1.3,
        "b1": 1.1,
        "a1": 0.8,
        "c1": 1.0,
        "ext_a": 0.0,
        "ext_c": 0.0,
        "ext_e": 0.0,
    }

    def test_all_values(self, analysis):
        for signal, expected in self.EXPECTED.items():
            assert analysis.signal_exposures[signal] == pytest.approx(
                expected
            ), signal


class TestPathWeightsExact:
    EXPECTED = {
        ("ext_c", "c1", "d1", "sys_out"): 0.495,
        ("ext_a", "a1", "b2", "sys_out"): 0.364,
        ("b1", "b1", "d1", "sys_out"): 0.11,
        ("ext_a", "a1", "b1", "d1", "sys_out"): 0.1056,
        ("b1", "b1", "b2", "sys_out"): 0.0975,
        ("ext_a", "a1", "b1", "b2", "sys_out"): 0.0936,
        ("ext_e", "sys_out"): 0.0,
    }

    def test_all_seven_paths(self, analysis):
        paths = {p.signals: p.weight for p in analysis.output_paths("sys_out")}
        assert len(paths) == 7
        for signals, weight in self.EXPECTED.items():
            assert paths[signals] == pytest.approx(weight), signals

    def test_ranking_order(self, analysis):
        ranked = analysis.ranked_output_paths("sys_out")
        expected_order = sorted(
            self.EXPECTED.items(), key=lambda item: -item[1]
        )
        assert [p.signals for p in ranked] == [s for s, _ in expected_order]


class TestPlacementConclusions:
    def test_edm_module_order(self, analysis):
        """Non-weighted exposure: E (2.3) > D (2.1) > B (1.9)."""
        modules = [item.module for item in analysis.placement.edm_modules]
        assert modules == ["E", "D", "B"]

    def test_erm_module_leader(self, analysis):
        assert analysis.placement.erm_modules[0].module == "C"

    def test_bottleneck_signals(self, analysis):
        """No internal signal lies on all six non-zero paths (b2 and d1
        split the traffic), so no bottleneck exists in the example."""
        assert analysis.placement.bottleneck_signals == []
