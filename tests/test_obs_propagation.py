"""Propagation tracing: observed permeability vs. the estimator."""

from __future__ import annotations

import pytest

from repro.core.permeability import PermeabilityMatrix
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.obs.propagation import PropagationObservations

from tests.conftest import build_toy_model, toy_factory


@pytest.fixture(scope="module")
def toy_result():
    """One small executed toy campaign shared by the module's tests."""
    config = CampaignConfig(
        duration_ms=64,
        injection_times_ms=(16, 32),
        error_models=tuple(bit_flip_models(8)),
        seed=2001,
    )
    campaign = InjectionCampaign(build_toy_model(), toy_factory, ["c"], config)
    return campaign.execute()


class TestFolding:
    def test_record_counts_arcs(self, toy_result):
        observations = PropagationObservations(toy_result.system)
        observations.record_all(toy_result)
        assert len(observations) == len(toy_result)
        filt = observations.arc("FILT", "src", "filt")
        # Every outcome targeting FILT.src contributes one injection.
        n_filt = sum(
            1 for outcome in toy_result
            if (outcome.module, outcome.input_signal) == ("FILT", "src")
        )
        assert filt.n_injections == n_filt
        assert 0 <= filt.n_propagated <= filt.n_injections
        # AMP is the identity: every fired flip on filt propagates.
        amp = observations.arc("AMP", "filt", "out")
        assert amp.observed_permeability == pytest.approx(1.0)
        assert amp.mean_latency_ms is not None
        assert amp.mean_latency_ms >= 0.0

    def test_unknown_arc_raises(self, toy_result):
        observations = PropagationObservations(toy_result.system)
        with pytest.raises(KeyError, match="no observations"):
            observations.arc("FILT", "src", "nope")

    def test_records_kept_only_on_request(self, toy_result):
        observations = PropagationObservations(toy_result.system)
        observations.record_all(toy_result)
        assert observations.records == ()
        keeping = PropagationObservations.from_campaign_result(
            toy_result, keep_records=True
        )
        assert len(keeping.records) == len(toy_result)
        record = keeping.records[0]
        assert record.module in ("FILT", "AMP")
        # ``diverged`` is ordered by first-divergence time.
        times = [time for _signal, time in record.diverged]
        assert times == sorted(times)

    def test_hottest_arcs_ranked_by_hits(self, toy_result):
        observations = PropagationObservations.from_campaign_result(toy_result)
        hottest = observations.hottest_arcs(10)
        hits = [arc.n_propagated for arc in hottest]
        assert hits == sorted(hits, reverse=True)


class TestMatrixAgreement:
    def test_matches_estimator_exactly(self, toy_result):
        """The acceptance criterion: live fold == post-hoc estimator."""
        observed = PropagationObservations.from_campaign_result(
            toy_result
        ).to_matrix()
        estimated = estimate_matrix(toy_result)
        assert observed.to_jsonable() == estimated.to_jsonable()

    def test_diff_against_estimator_is_zero(self, toy_result):
        observed = PropagationObservations.from_campaign_result(
            toy_result
        ).to_matrix()
        diff = observed.diff(estimate_matrix(toy_result))
        assert diff.agrees()
        assert diff.max_abs_delta == 0.0

    def test_diff_flags_deviation(self, toy_result):
        observed = PropagationObservations.from_campaign_result(
            toy_result
        ).to_matrix()
        reference = estimate_matrix(toy_result)
        skewed = PermeabilityMatrix(toy_result.system)
        for (module, input_signal, output_signal), estimate in reference.items():
            skewed.set(
                module, input_signal, output_signal,
                max(0.0, estimate.value - 0.25),
            )
        diff = observed.diff(skewed)
        assert not diff.agrees()
        assert diff.max_abs_delta == pytest.approx(0.25)
        assert diff.exceeding(0.1)
        assert "Permeability diff" in diff.render()
