"""SARIF 2.1.0 output tests: structure, schema validation, levels."""

from __future__ import annotations

import json

import pytest

from repro.core.permeability import PermeabilityMatrix
from repro.lint import (
    SARIF_VERSION,
    lint_system,
    registered_rules,
    to_sarif,
    validate_sarif,
)
from repro.model.builder import SystemBuilder
from repro.model.examples import build_fig2_system, fig2_permeabilities


def _fig2_report():
    system = build_fig2_system()
    matrix = PermeabilityMatrix.from_dict(system, fig2_permeabilities())
    return lint_system(system, matrix)


def test_sarif_envelope_and_driver():
    log = to_sarif(_fig2_report())
    assert log["version"] == SARIF_VERSION == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["properties"]["system"] == "fig2-example"


def test_sarif_rules_array_covers_registry():
    log = to_sarif(_fig2_report())
    descriptors = log["runs"][0]["tool"]["driver"]["rules"]
    assert [d["id"] for d in descriptors] == [
        rule.code for rule in registered_rules()
    ]
    for descriptor in descriptors:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["defaultConfiguration"]["level"] in (
            "note",
            "warning",
            "error",
        )
        assert descriptor["helpUri"].endswith(f"#{descriptor['id'].lower()}")


def test_sarif_results_carry_logical_locations():
    report = _fig2_report()
    log = to_sarif(report)
    results = log["runs"][0]["results"]
    assert len(results) == len(report)
    for result, diagnostic in zip(results, report):
        assert result["ruleId"] == diagnostic.code
        fqn = result["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
        assert fqn == diagnostic.location.fully_qualified()
        # ruleIndex points back into the driver's rules array
        descriptors = log["runs"][0]["tool"]["driver"]["rules"]
        assert descriptors[result["ruleIndex"]]["id"] == diagnostic.code


def test_sarif_levels_map_severities():
    builder = SystemBuilder("b")
    builder.add_module("M", inputs=["ghost"], outputs=["out"])
    builder.mark_system_output("out")
    report = lint_system(builder.build(validate=False))
    log = to_sarif(report)
    levels = {r["ruleId"]: r["level"] for r in log["runs"][0]["results"]}
    assert levels["R002"] == "error"
    assert levels["R004"] == "warning"


def test_sarif_round_trips_through_json():
    log = to_sarif(_fig2_report())
    assert json.loads(json.dumps(log)) == log


def test_validate_sarif_accepts_emitted_logs():
    validate_sarif(to_sarif(_fig2_report()))


def test_validate_sarif_rejects_malformed_logs():
    with pytest.raises(Exception):
        validate_sarif({"version": "1.0.0", "runs": []})
    with pytest.raises(Exception):
        validate_sarif({"version": "2.1.0", "runs": [{"results": []}]})


def test_validate_sarif_against_installed_jsonschema():
    jsonschema = pytest.importorskip("jsonschema")
    log = to_sarif(_fig2_report())
    from repro.lint import SARIF_MINIMAL_SCHEMA

    jsonschema.validate(log, SARIF_MINIMAL_SCHEMA)
