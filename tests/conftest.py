"""Shared fixtures: example systems, toy runtimes and cached campaigns."""

from __future__ import annotations

from typing import Mapping

import pytest

from repro.model.builder import SystemBuilder
from repro.model.examples import build_fig2_system, fig2_permeabilities
from repro.model.module import ModuleSpec, SoftwareModule
from repro.model.system import SystemModel
from repro.core.permeability import PermeabilityMatrix
from repro.simulation.runtime import SignalStore, SimulationRun
from repro.simulation.scheduler import SlotSchedule

# Shared hypothesis strategies, re-exported so test modules can import
# them from either ``tests.conftest`` or ``tests.strategies``.
from tests.strategies import (  # noqa: F401
    dag_matrices,
    generated_executable_systems,
    layered_dag_systems,
    values01,
)

# ---------------------------------------------------------------------------
# Fig. 2 example system
# ---------------------------------------------------------------------------


@pytest.fixture()
def fig2_system() -> SystemModel:
    """The paper's five-module A–E example system."""
    return build_fig2_system()


@pytest.fixture()
def fig2_matrix(fig2_system: SystemModel) -> PermeabilityMatrix:
    """The example system with its documented analytic permeabilities."""
    return PermeabilityMatrix.from_dict(fig2_system, fig2_permeabilities())


# ---------------------------------------------------------------------------
# Toy executable system with exactly known permeabilities
# ---------------------------------------------------------------------------
#
# Topology:   src (system input) -> FILT -> filt -> AMP -> out (system output)
#
# FILT masks away the low byte of its input, so a bit-flip injected into
# ``src`` at FILT propagates iff it hits one of the 8 high bits; AMP is
# the identity, so every flip on ``filt`` propagates.  This gives exact
# expected permeability estimates for the campaign/estimator tests:
# P^FILT = 0.5 over the full 16-bit flip set, P^AMP = 1.0.


class FiltModule(SoftwareModule):
    """Drops the low byte: out = in & 0xFF00."""

    def __init__(self) -> None:
        super().__init__(
            ModuleSpec(
                name="FILT",
                inputs=("src",),
                outputs=("filt",),
                description="Masks the low byte of src",
            )
        )

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        return {"filt": inputs["src"] & 0xFF00}


class AmpModule(SoftwareModule):
    """Identity pass-through."""

    def __init__(self) -> None:
        super().__init__(
            ModuleSpec(
                name="AMP",
                inputs=("filt",),
                outputs=("out",),
                description="Identity pass-through",
            )
        )

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        return {"out": inputs["filt"]}


class RampEnvironment:
    """Feeds ``src`` with a deterministic ramp and ignores the output."""

    def __init__(self, step: int = 3) -> None:
        self._step = step
        self._value = 0

    def reset(self) -> None:
        self._value = 0

    def before_software(self, now_ms: int, store: SignalStore) -> None:
        self._value = (self._value + self._step) & 0xFFFF
        store.write("src", self._value)

    def after_software(self, now_ms: int, store: SignalStore) -> None:
        pass

    def telemetry(self) -> dict[str, float]:
        return {"value": float(self._value)}


def build_toy_model() -> SystemModel:
    """Static topology of the toy FILT→AMP chain."""
    builder = SystemBuilder("toy-chain", description="FILT/AMP test chain")
    builder.add_module("FILT", inputs=["src"], outputs=["filt"])
    builder.add_module("AMP", inputs=["filt"], outputs=["out"])
    builder.mark_system_input("src")
    builder.mark_system_output("out")
    return builder.build()


def toy_factory(case: object) -> SimulationRun:
    """Picklable run factory for parallel-campaign tests."""
    return build_toy_run()


def build_toy_run(ramp_step: int = 3) -> SimulationRun:
    """Executable instance of the toy chain (1-slot schedule)."""
    schedule = SlotSchedule(n_slots=1)
    schedule.assign_every_slot("FILT")
    schedule.assign_every_slot("AMP")
    return SimulationRun(
        system=build_toy_model(),
        modules=[FiltModule(), AmpModule()],
        schedule=schedule,
        environment=RampEnvironment(step=ramp_step),
    )


@pytest.fixture()
def toy_model() -> SystemModel:
    return build_toy_model()


@pytest.fixture()
def toy_run() -> SimulationRun:
    return build_toy_run()
