"""Unit tests for backtrack trees (Output Error Tracing, steps A1–A4)."""

from __future__ import annotations

import pytest

from repro.core.backtrack import build_all_backtrack_trees, build_backtrack_tree
from repro.core.permeability import PermeabilityMatrix
from repro.core.treenode import NodeKind
from repro.model.builder import SystemBuilder
from repro.model.errors import MissingPermeabilityError, NotASystemSignalError


class TestFig2Tree:
    """Structure of the tree for the example system's output (Fig. 4)."""

    @pytest.fixture()
    def tree(self, fig2_matrix):
        return build_backtrack_tree(fig2_matrix, "sys_out")

    def test_root(self, tree):
        assert tree.system_output == "sys_out"
        assert tree.root.signal == "sys_out"
        assert tree.root.kind is NodeKind.ROOT
        assert tree.root.permeability == 1.0

    def test_root_children_are_producing_module_inputs(self, tree):
        children = [child.signal for child in tree.root.children]
        assert children == ["b2", "d1", "ext_e"]

    def test_child_edge_weights(self, tree, fig2_matrix):
        by_signal = {child.signal: child for child in tree.root.children}
        assert by_signal["b2"].permeability == fig2_matrix.get("E", "b2", "sys_out")
        assert by_signal["ext_e"].permeability == 0.0

    def test_system_input_leaves(self, tree):
        leaves = list(tree.root.leaves())
        boundary = [leaf for leaf in leaves if leaf.kind is NodeKind.BOUNDARY]
        assert {leaf.signal for leaf in boundary} == {"ext_a", "ext_c", "ext_e"}

    def test_feedback_leaves_not_expanded(self, tree):
        """The paper's double-line rule: b1 as input of B is a leaf."""
        feedback = [
            node for node in tree.root.walk() if node.kind is NodeKind.FEEDBACK
        ]
        assert feedback, "expected feedback leaves for module B"
        assert all(node.signal == "b1" for node in feedback)
        assert all(node.is_leaf for node in feedback)
        assert all(node.pair_module == "B" for node in feedback)

    def test_intermediate_nodes_are_internal_signals(self, tree):
        internal = [
            node.signal
            for node in tree.root.walk()
            if node.kind is NodeKind.INTERNAL
        ]
        assert set(internal) <= {"a1", "b1", "b2", "c1", "d1"}

    def test_path_count(self, tree):
        # The b1 feedback is followed exactly once on each branch:
        # b2 -> {b1 -> {b1(fb), a1->ext_a}, a1->ext_a}        (3 paths)
        # d1 -> {b1 -> {b1(fb), a1->ext_a}, c1->ext_c}        (3 paths)
        # ext_e                                               (1 path)
        assert tree.n_paths() == 7

    def test_node_count_stable(self, tree):
        assert tree.n_nodes() == tree.root.n_nodes() == 16

    def test_feedback_followed_exactly_once(self, tree):
        """The double-line leaf hangs under a node of the same signal
        (Fig. 4: the double line runs between I^B_1 and O^B_1)."""
        b2_branch = tree.root.children[0]
        b1_node = b2_branch.children[0]
        assert b1_node.signal == "b1"
        assert b1_node.kind is NodeKind.INTERNAL
        assert b1_node.children[0].signal == "b1"
        assert b1_node.children[0].kind is NodeKind.FEEDBACK

    def test_render_contains_double_line_marker(self, tree):
        text = tree.render()
        assert "==" in text
        assert "sys_out" in text
        assert "[0.650]" in text


class TestValidationAndEdgeCases:
    def test_not_a_system_output_rejected(self, fig2_matrix):
        with pytest.raises(NotASystemSignalError):
            build_backtrack_tree(fig2_matrix, "ext_a")
        with pytest.raises(NotASystemSignalError):
            build_backtrack_tree(fig2_matrix, "b1")

    def test_incomplete_matrix_rejected(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        with pytest.raises(MissingPermeabilityError):
            build_backtrack_tree(matrix, "sys_out")

    def test_all_trees(self, fig2_matrix):
        trees = build_all_backtrack_trees(fig2_matrix)
        assert set(trees) == {"sys_out"}

    def test_multi_output_system(self):
        builder = SystemBuilder("multi")
        builder.add_module("A", inputs=["x"], outputs=["y1", "y2"])
        builder.mark_system_input("x")
        builder.mark_system_output("y1", "y2")
        matrix = PermeabilityMatrix.uniform(builder.build(), 0.5)
        trees = build_all_backtrack_trees(matrix)
        assert set(trees) == {"y1", "y2"}
        for tree in trees.values():
            assert tree.n_paths() == 1

    def test_cross_module_cycle_terminates(self):
        """Two modules feeding each other must not recurse forever."""
        builder = SystemBuilder("cycle")
        builder.add_module("P", inputs=["x", "q_out"], outputs=["p_out"])
        builder.add_module("Q", inputs=["p_out"], outputs=["q_out", "sys"])
        builder.mark_system_input("x")
        builder.mark_system_output("sys")
        matrix = PermeabilityMatrix.uniform(builder.build(), 0.9)
        tree = build_backtrack_tree(matrix, "sys")
        cycle_leaves = [
            node for node in tree.root.walk() if node.kind is NodeKind.CYCLE
        ]
        assert cycle_leaves, "cycle guard should have cut the recursion"
        # The loop is traversed exactly once before the cut.
        assert tree.root.depth() >= 4

    def test_deep_chain_depth(self):
        builder = SystemBuilder("deep")
        n = 12
        builder.add_module("M0", inputs=["ext"], outputs=["s0"])
        for index in range(1, n):
            builder.add_module(
                f"M{index}", inputs=[f"s{index - 1}"], outputs=[f"s{index}"]
            )
        builder.mark_system_input("ext")
        builder.mark_system_output(f"s{n - 1}")
        matrix = PermeabilityMatrix.uniform(builder.build(), 1.0)
        tree = build_backtrack_tree(matrix, f"s{n - 1}")
        assert tree.root.depth() == n + 1
        assert tree.n_paths() == 1


class TestArrestmentBacktrackTree:
    """The TOC2 backtrack tree of the target system (paper Fig. 10)."""

    @pytest.fixture()
    def tree(self):
        from repro.arrestment import build_arrestment_model

        system = build_arrestment_model()
        matrix = PermeabilityMatrix.uniform(system, 1.0)
        return build_backtrack_tree(matrix, "TOC2")

    def test_paper_path_count(self, tree):
        """Section 8: 'we can generate 22 propagation paths' for TOC2."""
        assert tree.n_paths() == 22

    def test_feedback_leaves_for_slot_and_i(self, tree):
        """Fig. 10 shows the special relation for ms_slot_nbr and i."""
        feedback_signals = {
            node.signal
            for node in tree.root.walk()
            if node.kind is NodeKind.FEEDBACK
        }
        assert feedback_signals == {"ms_slot_nbr", "i"}

    def test_leaves_are_system_inputs_or_feedback(self, tree):
        for leaf in tree.root.leaves():
            assert leaf.kind in (NodeKind.BOUNDARY, NodeKind.FEEDBACK)

    def test_boundary_leaf_signals(self, tree):
        boundary = {
            leaf.signal
            for leaf in tree.root.leaves()
            if leaf.kind is NodeKind.BOUNDARY
        }
        assert boundary == {"PACNT", "TIC1", "TCNT", "ADC"}

    def test_root_is_toc2_from_pres_a(self, tree):
        assert tree.root.signal == "TOC2"
        assert tree.root.module == "PRES_A"
        assert [child.signal for child in tree.root.children] == ["OutValue"]
