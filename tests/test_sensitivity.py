"""Tests for the sensitivity / what-if analysis."""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permeability import PermeabilityMatrix
from repro.core.sensitivity import (
    output_reach,
    output_sensitivities,
    verify_gradient,
    what_if,
)
from repro.model.examples import build_fig2_system


class TestOutputReach:
    def test_fig2_reach_is_path_sum(self, fig2_matrix):
        # Sum of the seven hand-computed path weights.
        expected = 0.495 + 0.364 + 0.11 + 0.1056 + 0.0975 + 0.0936 + 0.0
        assert output_reach(fig2_matrix, "sys_out") == pytest.approx(expected)

    def test_uniform_one_counts_paths(self, fig2_system):
        matrix = PermeabilityMatrix.uniform(fig2_system, 1.0)
        assert output_reach(matrix, "sys_out") == pytest.approx(7.0)


class TestGradient:
    def test_hand_computed_entries(self, fig2_matrix):
        report = output_sensitivities(fig2_matrix, "sys_out")
        by_pair = report.by_pair()
        # (C, ext_c, c1) lies on exactly one path; its gradient is the
        # product of the other edges: 0.9 * 0.55.
        entry = by_pair[("C", "ext_c", "c1")]
        assert entry.n_paths == 1
        assert entry.gradient == pytest.approx(0.9 * 0.55)
        # (E, d1, sys_out) lies on three paths.
        entry = by_pair[("E", "d1", "sys_out")]
        assert entry.n_paths == 3
        assert entry.gradient == pytest.approx(
            (0.495 + 0.11 + 0.1056) / 0.55
        )

    def test_zero_pair_has_nonzero_gradient(self, fig2_matrix):
        """The gradient of the dead ext_e pair is 1: raising it would
        add mass directly (the path has no other edges)."""
        report = output_sensitivities(fig2_matrix, "sys_out")
        entry = report.by_pair()[("E", "ext_e", "sys_out")]
        assert entry.permeability == 0.0
        assert entry.gradient == pytest.approx(1.0)

    def test_contributions_sum_to_weighted_reach(self, fig2_matrix):
        """Multilinearity: sum of P*dR/dP equals sum over paths of
        weight * path length (each edge contributes its path's weight)."""
        report = output_sensitivities(fig2_matrix, "sys_out")
        from repro.core.backtrack import build_backtrack_tree
        from repro.core.paths import paths_of_backtrack_tree

        paths = paths_of_backtrack_tree(
            build_backtrack_tree(fig2_matrix, "sys_out")
        )
        expected = sum(path.weight * path.length for path in paths)
        total = sum(item.contribution for item in report.sensitivities)
        assert total == pytest.approx(expected)

    def test_render(self, fig2_matrix):
        text = output_sensitivities(fig2_matrix, "sys_out").render()
        assert "dR/dP" in text
        assert "sys_out" in text

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
            min_size=11,
            max_size=11,
        )
    )
    def test_analytic_matches_finite_difference(self, values):
        system = build_fig2_system()
        pairs = list(system.pair_index())
        matrix = PermeabilityMatrix.from_dict(system, dict(zip(pairs, values)))
        analytic, numeric = verify_gradient(
            matrix, "sys_out", ("B", "a1", "b2")
        )
        assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-6)


class TestWhatIf:
    def test_hardening_reduces_reach(self, fig2_matrix):
        before, after, modified = what_if(
            fig2_matrix, {("D", "c1", "d1"): 0.0}, "sys_out"
        )
        assert before == pytest.approx(output_reach(fig2_matrix, "sys_out"))
        # Killing the c1 pair removes the 0.495 path entirely.
        assert after == pytest.approx(before - 0.495)

    def test_original_matrix_untouched(self, fig2_matrix):
        what_if(fig2_matrix, {("D", "c1", "d1"): 0.0}, "sys_out")
        assert fig2_matrix.get("D", "c1", "d1") == 0.9

    def test_linear_prediction_is_exact(self, fig2_matrix):
        """Multilinearity: a single-pair change is predicted exactly by
        the gradient (no higher-order terms)."""
        pair = ("B", "a1", "b2")
        report = output_sensitivities(fig2_matrix, "sys_out")
        gradient = report.by_pair()[pair].gradient
        before, after, _ = what_if(fig2_matrix, {pair: 0.2}, "sys_out")
        delta_p = 0.2 - fig2_matrix.get(*pair)
        assert after - before == pytest.approx(gradient * delta_p)

    def test_experimental_counts_preserved_in_clone(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        for key in fig2_system.pair_index():
            matrix.set_counts(*key, n_errors=1, n_injections=4)
        _, _, modified = what_if(
            matrix, {("A", "ext_a", "a1"): 0.9}, "sys_out"
        )
        untouched = modified.estimate("C", "ext_c", "c1")
        assert untouched.is_experimental
        assert modified.get("A", "ext_a", "a1") == 0.9


class TestArrestmentSensitivity:
    def test_corridor_pairs_lead(self):
        """On the target system the V_REG/PRES_A corridor pairs have the
        highest leverage — every path crosses them (OB5 re-derived)."""
        from repro.arrestment import build_arrestment_model

        matrix = PermeabilityMatrix.uniform(build_arrestment_model(), 0.5)
        report = output_sensitivities(matrix, "TOC2")
        top = report.ranked()[:2]
        top_pairs = {(item.module, item.output_signal) for item in top}
        assert ("PRES_A", "TOC2") in top_pairs
        assert any(item.n_paths == 22 for item in top)