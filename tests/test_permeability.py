"""Unit tests for :mod:`repro.core.permeability` (Eqs. 1–3)."""

from __future__ import annotations

import math

import pytest

from repro.core.permeability import (
    ModuleMeasures,
    PermeabilityEstimate,
    PermeabilityMatrix,
)
from repro.model.errors import InvalidProbabilityError, MissingPermeabilityError
from repro.model.examples import fig2_permeabilities


class TestPermeabilityEstimate:
    def test_plain_value(self):
        estimate = PermeabilityEstimate(0.5)
        assert estimate.value == 0.5
        assert not estimate.is_experimental

    def test_from_counts(self):
        estimate = PermeabilityEstimate.from_counts(3, 12)
        assert estimate.value == 0.25
        assert estimate.is_experimental
        assert estimate.n_errors == 3
        assert estimate.n_injections == 12

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            PermeabilityEstimate(1.2)
        with pytest.raises(InvalidProbabilityError):
            PermeabilityEstimate(-0.1)

    def test_counts_must_come_together(self):
        with pytest.raises(ValueError):
            PermeabilityEstimate(0.5, n_injections=10)

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            PermeabilityEstimate.from_counts(5, 0)
        with pytest.raises(ValueError):
            PermeabilityEstimate(0.5, n_injections=4, n_errors=5)

    def test_wilson_interval_brackets_estimate(self):
        estimate = PermeabilityEstimate.from_counts(30, 100)
        low, high = estimate.wilson_interval()
        assert 0.0 <= low <= estimate.value <= high <= 1.0

    def test_wilson_interval_analytic_value(self):
        estimate = PermeabilityEstimate.from_counts(50, 100)
        low, high = estimate.wilson_interval(z=1.96)
        # Wilson interval for p=0.5, n=100, z=1.96.
        assert math.isclose(low, 0.40383, abs_tol=1e-4)
        assert math.isclose(high, 0.59617, abs_tol=1e-4)

    def test_wilson_interval_degenerate_for_analytic(self):
        estimate = PermeabilityEstimate(0.3)
        assert estimate.wilson_interval() == (0.3, 0.3)

    def test_wilson_narrows_with_samples(self):
        wide = PermeabilityEstimate.from_counts(5, 10).wilson_interval()
        narrow = PermeabilityEstimate.from_counts(500, 1000).wilson_interval()
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])


class TestMatrixPopulation:
    def test_set_and_get(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        matrix.set("A", "ext_a", "a1", 0.8)
        assert matrix.get("A", "ext_a", "a1") == 0.8

    def test_unknown_pair_rejected_on_set(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        with pytest.raises(MissingPermeabilityError):
            matrix.set("A", "ext_a", "sys_out", 0.5)

    def test_unset_pair_raises_on_get(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        with pytest.raises(MissingPermeabilityError):
            matrix.get("A", "ext_a", "a1")

    def test_get_or_none(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        assert matrix.get_or_none("A", "ext_a", "a1") is None
        matrix.set("A", "ext_a", "a1", 0.8)
        assert matrix.get_or_none("A", "ext_a", "a1") == 0.8

    def test_set_counts(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        matrix.set_counts("A", "ext_a", "a1", n_errors=4, n_injections=16)
        assert matrix.get("A", "ext_a", "a1") == 0.25
        assert matrix.estimate("A", "ext_a", "a1").is_experimental

    def test_completeness(self, fig2_system):
        matrix = PermeabilityMatrix.from_dict(fig2_system, fig2_permeabilities())
        assert matrix.is_complete()
        assert matrix.missing_pairs() == ()
        matrix.require_complete()  # must not raise

    def test_incompleteness_detected(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        matrix.set("A", "ext_a", "a1", 1.0)
        assert not matrix.is_complete()
        assert len(matrix.missing_pairs()) == fig2_system.n_pairs() - 1
        with pytest.raises(MissingPermeabilityError):
            matrix.require_complete()

    def test_len_and_contains(self, fig2_matrix, fig2_system):
        assert len(fig2_matrix) == fig2_system.n_pairs()
        assert ("A", "ext_a", "a1") in fig2_matrix
        assert ("A", "nope", "a1") not in fig2_matrix

    def test_uniform_constructor(self, fig2_system):
        matrix = PermeabilityMatrix.uniform(fig2_system, 1.0)
        assert matrix.is_complete()
        assert all(estimate.value == 1.0 for _, estimate in matrix.items())

    def test_items_follow_pair_order(self, fig2_matrix, fig2_system):
        keys = [key for key, _ in fig2_matrix.items()]
        assert keys == list(fig2_system.pair_index())


class TestModuleMeasures:
    def test_relative_permeability_eq2(self, fig2_matrix):
        # Module B: pairs 0.5, 0.3, 0.6, 0.7 over m*n = 4.
        assert fig2_matrix.relative_permeability("B") == pytest.approx(0.525)

    def test_nonweighted_eq3(self, fig2_matrix):
        assert fig2_matrix.nonweighted_relative_permeability("B") == pytest.approx(2.1)

    def test_eq3_upper_bound_is_pair_count(self, fig2_system):
        matrix = PermeabilityMatrix.uniform(fig2_system, 1.0)
        spec = fig2_system.module("B")
        assert matrix.nonweighted_relative_permeability("B") == spec.n_pairs

    def test_single_pair_module_measures_coincide(self, fig2_matrix):
        measures = fig2_matrix.module_measures("A")
        assert measures.relative_permeability == pytest.approx(0.8)
        assert measures.nonweighted_relative_permeability == pytest.approx(0.8)

    def test_measures_record_shape(self, fig2_matrix):
        measures = fig2_matrix.module_measures("E")
        assert isinstance(measures, ModuleMeasures)
        assert measures.n_inputs == 3
        assert measures.n_outputs == 1
        assert measures.n_pairs == 3

    def test_all_module_measures(self, fig2_matrix, fig2_system):
        measures = fig2_matrix.all_module_measures()
        assert set(measures) == set(fig2_system.module_names())

    def test_paper_hub_comparison(self, fig2_system):
        """Section 4.1: equal P means the bigger module has bigger P-bar."""
        matrix = PermeabilityMatrix.uniform(fig2_system, 0.5)
        small = matrix.module_measures("A")  # 1 pair
        hub = matrix.module_measures("B")  # 4 pairs
        assert small.relative_permeability == hub.relative_permeability
        assert (
            hub.nonweighted_relative_permeability
            > small.nonweighted_relative_permeability
        )

    def test_rankings(self, fig2_matrix):
        by_relative = fig2_matrix.rank_by_relative_permeability()
        assert by_relative[0].module == "C"  # P = 1.0
        by_sum = fig2_matrix.rank_by_nonweighted_permeability()
        assert by_sum[0].module == "B"  # P-bar = 2.1


class TestSerialisation:
    def test_json_roundtrip(self, fig2_matrix, fig2_system):
        text = fig2_matrix.to_json()
        rebuilt = PermeabilityMatrix.from_json(fig2_system, text)
        assert rebuilt.is_complete()
        for key, estimate in fig2_matrix.items():
            assert rebuilt.estimate(*key).value == estimate.value

    def test_json_preserves_counts(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        matrix.set_counts("A", "ext_a", "a1", n_errors=7, n_injections=160)
        rebuilt = PermeabilityMatrix.from_json(fig2_system, matrix.to_json())
        estimate = rebuilt.estimate("A", "ext_a", "a1")
        assert estimate.n_errors == 7
        assert estimate.n_injections == 160

    def test_jsonable_structure(self, fig2_matrix):
        data = fig2_matrix.to_jsonable()
        assert data["system"] == "fig2-example"
        assert len(data["entries"]) == 11
        entry = data["entries"][0]
        assert {"module", "input", "output", "value"} <= set(entry)


class TestPooling:
    def counted(self, fig2_system, n_errors, n_injections):
        matrix = PermeabilityMatrix(fig2_system)
        for key in fig2_system.pair_index():
            matrix.set_counts(*key, n_errors=n_errors, n_injections=n_injections)
        return matrix

    def test_counts_sum(self, fig2_system):
        a = self.counted(fig2_system, 1, 10)
        b = self.counted(fig2_system, 3, 10)
        pooled = PermeabilityMatrix.pooled([a, b])
        estimate = pooled.estimate("A", "ext_a", "a1")
        assert estimate.n_errors == 4
        assert estimate.n_injections == 20
        assert estimate.value == pytest.approx(0.2)

    def test_pooling_narrows_wilson_interval(self, fig2_system):
        a = self.counted(fig2_system, 2, 10)
        pooled = PermeabilityMatrix.pooled([a, a, a, a])
        wide = a.estimate("A", "ext_a", "a1").wilson_interval()
        narrow = pooled.estimate("A", "ext_a", "a1").wilson_interval()
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_single_matrix_identity(self, fig2_system):
        a = self.counted(fig2_system, 5, 40)
        pooled = PermeabilityMatrix.pooled([a])
        assert pooled.to_jsonable() == a.to_jsonable()

    def test_analytic_values_rejected(self, fig2_matrix):
        with pytest.raises(ValueError):
            PermeabilityMatrix.pooled([fig2_matrix, fig2_matrix])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PermeabilityMatrix.pooled([])

    def test_system_mismatch_rejected(self, fig2_system):
        from repro.model.builder import SystemBuilder

        builder = SystemBuilder("other")
        builder.add_module("Z", inputs=["x"], outputs=["y"])
        builder.mark_system_input("x")
        builder.mark_system_output("y")
        other = PermeabilityMatrix(builder.build())
        other.set_counts("Z", "x", "y", n_errors=0, n_injections=1)
        with pytest.raises(ValueError):
            PermeabilityMatrix.pooled([self.counted(fig2_system, 1, 2), other])
