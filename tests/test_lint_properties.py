"""Property tests for the linter over random topologies and mutations.

Two invariant families:

* **soundness on valid models** — every system the random layered-DAG
  generator produces (the same machinery as test_random_topologies)
  lints clean at error severity;
* **sensitivity to seeded defects** — specific mutations of a valid
  system (drop a connection, add an orphan module, widen one signal)
  are always flagged with the documented diagnostic code.
"""

from __future__ import annotations

import dataclasses

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lint import Severity, lint_system
from repro.model.module import ModuleSpec
from repro.model.system import SystemModel

from tests.strategies import layered_dag_systems


def _rebuild(
    system: SystemModel,
    modules: list[ModuleSpec] | None = None,
    signals=None,
) -> SystemModel:
    """Rebuild a system with substituted parts, deferring validation."""
    return SystemModel(
        name=system.name,
        modules=modules if modules is not None else list(system.modules.values()),
        system_inputs=system.system_inputs,
        system_outputs=system.system_outputs,
        signals=signals if signals is not None else list(system.signals.values()),
        validate=False,
    )


@settings(max_examples=50, deadline=None)
@given(layered_dag_systems())
def test_random_valid_systems_lint_clean_at_error_severity(system):
    report = lint_system(system)
    assert not report.has_errors, report.render_text()
    # The generator builds acyclic systems rooted at system inputs, so
    # the structural warnings cannot fire either.
    assert not report.by_code("R004")
    assert not report.by_code("R005")
    assert not report.by_code("R006")


@settings(max_examples=50, deadline=None)
@given(layered_dag_systems(), st.data())
def test_dropping_a_connection_is_flagged_r001(system, data):
    # Pick a signal whose only consumer we remove and that is not a
    # system output: it becomes dangling.
    candidates = [
        signal
        for signal in system.signal_names()
        if len(system.consumers_of(signal)) == 1
        and not system.is_system_output(signal)
        and system.producer_of(signal) is not None
    ]
    assume(candidates)
    victim = data.draw(st.sampled_from(candidates))
    consumer = system.consumers_of(victim)[0].module
    modules = []
    for spec in system.modules.values():
        if spec.name == consumer:
            spec = dataclasses.replace(
                spec, inputs=tuple(s for s in spec.inputs if s != victim)
            )
            assume(spec.inputs)  # keep the module injectable
        modules.append(spec)
    mutated = _rebuild(system, modules=modules)
    report = lint_system(mutated)
    assert victim in {d.location.signal for d in report.by_code("R001")}


@settings(max_examples=50, deadline=None)
@given(layered_dag_systems())
def test_orphan_module_is_flagged_r002(system):
    orphan = ModuleSpec(
        name="ORPHAN", inputs=("nowhere_in",), outputs=("nowhere_out",)
    )
    mutated = _rebuild(system, modules=[*system.modules.values(), orphan])
    report = lint_system(mutated)
    assert "nowhere_in" in {d.location.signal for d in report.by_code("R002")}
    # its unconsumed output is dangling too
    assert "nowhere_out" in {d.location.signal for d in report.by_code("R001")}


@settings(max_examples=50, deadline=None)
@given(layered_dag_systems(), st.data())
def test_widening_a_signal_is_flagged_r008(system, data):
    # Every generated module input feeds at least one output pair and
    # inputs are always distinct signals from the (fresh) outputs, so
    # widening any consumed input must surface a width mismatch.
    consumed = [
        signal
        for signal in system.signal_names()
        if system.consumers_of(signal)
    ]
    assume(consumed)
    victim = data.draw(st.sampled_from(consumed))
    signals = [
        dataclasses.replace(spec, width=32) if spec.name == victim else spec
        for spec in system.signals.values()
    ]
    mutated = _rebuild(system, signals=signals)
    report = lint_system(mutated)
    flagged_inputs = {
        d.message.split("'")[1] for d in report.by_code("R008")
    }  # first quoted name in the message is the input signal
    assert victim in flagged_inputs
    assert not report.has_errors  # width mismatch alone is a warning
