"""Tests for the two-node master/slave configuration (paper Fig. 6)."""

from __future__ import annotations

import pytest

from repro.arrestment.testcases import ArrestmentTestCase
from repro.arrestment.twonode import (
    CommLinkModule,
    build_twonode_model,
    build_twonode_run,
    twonode_schedule,
)
from repro.core.backtrack import build_all_backtrack_trees, build_backtrack_tree
from repro.core.exposure import all_module_exposures, signal_exposure
from repro.core.graph import PermeabilityGraph
from repro.core.permeability import PermeabilityMatrix
from repro.core.trace import build_trace_tree


class TestTopology:
    def test_inventory(self):
        system = build_twonode_model()
        assert len(system.modules) == 10
        assert system.n_pairs() == 30
        assert system.system_inputs == ("PACNT", "TIC1", "TCNT", "ADC", "ADCS")
        assert system.system_outputs == ("TOC2", "TOC2S")

    def test_link_topology(self):
        system = build_twonode_model()
        assert system.producer_of("SetValueS").module == "COMM"
        consumers = {port.module for port in system.consumers_of("SetValueS")}
        assert consumers == {"V_REG_S"}

    def test_schedule_covers_all_modules(self):
        schedule = twonode_schedule()
        assert set(schedule.all_modules()) == set(build_twonode_model().modules)


class TestCommLink:
    def test_one_cycle_delay(self):
        comm = CommLinkModule()
        assert comm.activate({"SetValue": 111}, 0) == {"SetValueS": 0}
        assert comm.activate({"SetValue": 222}, 7) == {"SetValueS": 111}
        assert comm.activate({"SetValue": 333}, 14) == {"SetValueS": 222}

    def test_reset_clears_mailbox(self):
        comm = CommLinkModule()
        comm.activate({"SetValue": 999}, 0)
        comm.reset()
        assert comm.activate({"SetValue": 1}, 0) == {"SetValueS": 0}


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def result(self):
        return build_twonode_run(ArrestmentTestCase(14000, 60)).run(12000)

    def test_arrestment_completes(self, result):
        assert result.telemetry["stop_time_ms"] > 0
        assert result.telemetry["position_m"] < 360

    def test_slave_follows_master_set_point(self, result):
        master = result.traces["SetValue"].samples
        slave = result.traces["SetValueS"].samples
        # After the one-cycle transport delay the streams agree.
        assert slave[5000] == master[5000] or slave[5000] in master[4990:5001]
        assert master[8000] == slave[8000]

    def test_both_drums_brake(self, result):
        assert result.traces["TOC2"][5000] > 0
        assert result.traces["TOC2S"][5000] > 0
        # Both pressures contributed: peak deceleration matches the
        # single-node system's (same total brake force).
        assert result.telemetry["peak_decel_ms2"] > 4.0

    def test_deterministic(self):
        case = ArrestmentTestCase(11000, 70)
        a = build_twonode_run(case).run(2500)
        b = build_twonode_run(case).run(2500)
        assert a.traces["TOC2S"].samples == b.traces["TOC2S"].samples


class TestTwoNodeAnalysis:
    @pytest.fixture()
    def matrix(self):
        return PermeabilityMatrix.uniform(build_twonode_model(), 1.0)

    def test_two_backtrack_trees(self, matrix):
        trees = build_all_backtrack_trees(matrix)
        assert set(trees) == {"TOC2", "TOC2S"}
        # The master tree is unchanged by the slave's presence.
        assert trees["TOC2"].n_paths() == 22

    def test_slave_tree_reaches_master_inputs(self, matrix):
        """Errors on the slave output trace back through the COMM link
        into the master's whole front end."""
        tree = build_backtrack_tree(matrix, "TOC2S")
        leaf_signals = {leaf.signal for leaf in tree.root.leaves()}
        assert "ADCS" in leaf_signals  # slave's own transducer
        assert "PACNT" in leaf_signals  # via COMM <- SetValue <- CALC
        # SetValueS re-roots the master's 21-path SetValue subtree, and
        # InValueS contributes the slave's own ADCS path: 22 paths.
        assert tree.n_paths() == 22

    def test_setvalue_exposure_rises_with_fanout(self, matrix):
        """SetValue now feeds both V_REG and COMM: its Eq. 6 exposure is
        evaluated over both trees but counted once per unique arc."""
        trees = list(build_all_backtrack_trees(matrix).values())
        assert signal_exposure(trees, "SetValue") == pytest.approx(5.0)
        assert signal_exposure(trees, "SetValueS") == pytest.approx(1.0)

    def test_master_trace_tree_fans_out_to_both_outputs(self, matrix):
        tree = build_trace_tree(matrix, "PACNT")
        leaf_signals = {leaf.signal for leaf in tree.root.leaves()}
        assert leaf_signals == {"TOC2", "TOC2S"}

    def test_slave_chain_exposures(self, matrix):
        graph = PermeabilityGraph(matrix)
        exposures = all_module_exposures(graph)
        assert exposures["COMM"].has_exposure
        assert exposures["V_REG_S"].has_exposure
        assert not exposures["PRES_S_S"].has_exposure  # system input only


class TestTwoNodeRendering:
    def test_summary_includes_both_outputs(self):
        matrix = PermeabilityMatrix.uniform(build_twonode_model(), 0.5)
        from repro.core.analysis import PropagationAnalysis

        analysis = PropagationAnalysis(matrix)
        text = analysis.render_summary()
        assert text.count("Table 4.") == 2  # one ranked table per output
        assert "TOC2S" in text
        assert "COMM" in text

    def test_table4_selects_output(self):
        matrix = PermeabilityMatrix.uniform(build_twonode_model(), 0.5)
        from repro.core.analysis import PropagationAnalysis

        analysis = PropagationAnalysis(matrix)
        slave = analysis.render_table4("TOC2S", only_nonzero=False)
        assert "SetValueS" in slave
