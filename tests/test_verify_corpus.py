"""Replay every archived reproducer in tests/corpus/ through the oracle.

This is the "bugs stay found" half of the verify subsystem: any failure
``repro verify`` ever shrank and archived — plus the hand-written seed
workloads — is re-run on every test invocation.  Checked-in corpus
entries are expected to *pass* (they archive once-fixed bugs or
interesting-but-healthy workloads); a reproducer for a still-open bug
would live on a branch alongside its fix.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify import iter_corpus, load_reproducer, replay

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = iter_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(CORPUS_FILES) >= 3, "expected the hand-written seed corpus"


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_reproducer_replays_clean(path):
    reproducer = load_reproducer(path)
    report = replay(reproducer)
    assert report.n_runs > 0
    assert "strategy-identity" in report.checks


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_reproducer_filename_matches_content(path):
    reproducer = load_reproducer(path)
    assert path.stem.endswith(reproducer.content_id()), (
        "corpus filenames embed the workload hash; regenerate with "
        "write_reproducer() after editing"
    )
