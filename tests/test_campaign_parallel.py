"""Tests for grid-sharded parallel campaign execution."""

from __future__ import annotations

import pytest

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip, RandomBitFlip
from repro.injection.estimator import estimate_matrix
from repro.model.errors import CampaignError

from tests.conftest import build_toy_model, toy_factory


def make_campaign(**overrides) -> InjectionCampaign:
    config = dict(
        duration_ms=30,
        injection_times_ms=(5, 15),
        # Include a stochastic model so seed derivation is covered.
        error_models=(BitFlip(15), BitFlip(3), RandomBitFlip()),
        seed=77,
    )
    config.update(overrides)
    return InjectionCampaign(
        build_toy_model(),
        toy_factory,
        {"c0": None, "c1": None, "c2": None},
        CampaignConfig(**config),
    )


def outcome_records(result):
    return [
        (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
         o.error_model, o.fired_at_ms, o.comparison.first_divergence_ms)
        for o in result
    ]


class TestExecuteParallel:
    def test_identical_to_serial(self):
        serial = make_campaign().execute()
        parallel = make_campaign().execute_parallel(max_workers=2)
        assert len(parallel) == len(serial)
        assert outcome_records(parallel) == outcome_records(serial)

    def test_identical_to_naive_serial(self):
        """Grid sharding + prefix reuse matches the naive full-re-run path."""
        naive = make_campaign(reuse_golden_prefix=False).execute()
        parallel = make_campaign().execute_parallel(max_workers=2, chunk_size=1)
        assert outcome_records(parallel) == outcome_records(naive)

    def test_matrix_identical(self):
        serial = estimate_matrix(make_campaign().execute())
        parallel = estimate_matrix(make_campaign().execute_parallel(max_workers=3))
        assert serial.to_jsonable() == parallel.to_jsonable()

    def test_progress_reports_completed_runs(self):
        """Progress counts injection runs per finished chunk, not cases."""
        seen = []
        make_campaign().execute_parallel(
            max_workers=2,
            chunk_size=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        # 3 cases x 2 targets = 6 single-target chunks of 6 runs each.
        assert seen == [(6, 36), (12, 36), (18, 36), (24, 36), (30, 36), (36, 36)]

    def test_chunking_beyond_case_count(self):
        """chunk_size=1 yields more work items than test cases."""
        result = make_campaign().execute_parallel(max_workers=4, chunk_size=1)
        assert len(result) == make_campaign().total_runs()

    def test_single_worker(self):
        result = make_campaign().execute_parallel(max_workers=1)
        assert len(result) == make_campaign().total_runs()

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(CampaignError):
            make_campaign().execute_parallel(max_workers=1, chunk_size=0)

    def test_golden_runs_collected_in_parent(self):
        """Golden Runs are computed in the parent and stay inspectable."""
        campaign = make_campaign()
        campaign.execute_parallel(max_workers=2)
        assert set(campaign.golden_runs()) == {"c0", "c1", "c2"}
        for golden in campaign.golden_runs().values():
            assert golden.duration_ms == 30
