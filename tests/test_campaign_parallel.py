"""Tests for parallel campaign execution."""

from __future__ import annotations

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip, RandomBitFlip
from repro.injection.estimator import estimate_matrix

from tests.conftest import build_toy_model, toy_factory


def make_campaign() -> InjectionCampaign:
    return InjectionCampaign(
        build_toy_model(),
        toy_factory,
        {"c0": None, "c1": None, "c2": None},
        CampaignConfig(
            duration_ms=30,
            injection_times_ms=(5, 15),
            # Include a stochastic model so seed derivation is covered.
            error_models=(BitFlip(15), BitFlip(3), RandomBitFlip()),
            seed=77,
        ),
    )


class TestExecuteParallel:
    def test_identical_to_serial(self):
        serial = make_campaign().execute()
        parallel = make_campaign().execute_parallel(max_workers=2)
        assert len(parallel) == len(serial)
        serial_records = [
            (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
             o.error_model, o.fired_at_ms, o.comparison.first_divergence_ms)
            for o in serial
        ]
        parallel_records = [
            (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
             o.error_model, o.fired_at_ms, o.comparison.first_divergence_ms)
            for o in parallel
        ]
        assert parallel_records == serial_records

    def test_matrix_identical(self):
        serial = estimate_matrix(make_campaign().execute())
        parallel = estimate_matrix(make_campaign().execute_parallel(max_workers=3))
        assert serial.to_jsonable() == parallel.to_jsonable()

    def test_progress_per_case(self):
        seen = []
        make_campaign().execute_parallel(
            max_workers=2, progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_single_worker(self):
        result = make_campaign().execute_parallel(max_workers=1)
        assert len(result) == make_campaign().total_runs()

    def test_golden_runs_not_collected(self):
        campaign = make_campaign()
        campaign.execute_parallel(max_workers=2)
        assert campaign.golden_runs() == {}
