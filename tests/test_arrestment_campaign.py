"""End-to-end campaign on the target system: paper-shape assertions.

Runs a reduced injection campaign (one workload, one injection time,
all 16 bit positions, all 13 module inputs — 208 injection runs) and
checks that the qualitative structure of the paper's Tables 1–4 and
observations OB1–OB6 emerges from the experiment.  Marked ``slow``; the
full-resolution reproduction lives in the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.testcases import ArrestmentTestCase
from repro.baselines.uniform import analyse_uniform_propagation
from repro.core.analysis import PropagationAnalysis
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def campaign_result():
    system = build_arrestment_model()
    config = CampaignConfig(
        duration_ms=4500,
        injection_times_ms=(2500,),
        error_models=tuple(bit_flip_models(16)),
        seed=7,
    )
    campaign = InjectionCampaign(
        system,
        lambda case: build_arrestment_run(case),
        {"m14000-v60": ArrestmentTestCase(14000, 60)},
        config,
    )
    return campaign.execute()


@pytest.fixture(scope="module")
def matrix(campaign_result):
    return estimate_matrix(campaign_result)


class TestTable1Shape:
    def test_clock_matches_paper_exactly(self, matrix):
        """Table 1/2: P^CLOCK[slot->slot] = 1.000, P^CLOCK = 0.500."""
        assert matrix.get("CLOCK", "ms_slot_nbr", "ms_slot_nbr") == 1.0
        assert matrix.get("CLOCK", "ms_slot_nbr", "mscnt") == 0.0
        assert matrix.relative_permeability("CLOCK") == 0.5

    def test_ob2_stopped_column_non_permeable(self, matrix):
        """OB2: permeability into DIST_S's stopped output is zero."""
        for input_signal in ("PACNT", "TIC1", "TCNT"):
            assert matrix.get("DIST_S", input_signal, "stopped") == 0.0

    def test_pulscnt_driven_by_pacnt_only(self, matrix):
        assert matrix.get("DIST_S", "PACNT", "pulscnt") >= 0.9
        assert matrix.get("DIST_S", "TIC1", "pulscnt") == 0.0
        assert matrix.get("DIST_S", "TCNT", "pulscnt") == 0.0

    def test_ob3_pres_s_non_permeable(self, matrix):
        """OB3: PRES_S's conditioning blocks (nearly) all input errors."""
        assert matrix.get("PRES_S", "ADC", "InValue") <= 0.15

    def test_v_reg_highly_permeable(self, matrix):
        """Paper: 0.884 and 0.920 for V_REG's two pairs."""
        assert matrix.get("V_REG", "SetValue", "OutValue") >= 0.8
        assert matrix.get("V_REG", "InValue", "OutValue") >= 0.8

    def test_pres_a_quantisation_loss(self, matrix):
        """Paper: 0.860 — the drive drops its low bits, so the
        permeability is high but clearly below one."""
        value = matrix.get("PRES_A", "OutValue", "TOC2")
        assert 0.75 <= value < 1.0

    def test_calc_feedback_certain(self, matrix):
        assert matrix.get("CALC", "i", "i") == 1.0

    def test_no_uniform_propagation(self, matrix):
        """Section 2: intermediate permeabilities exist (contra [12])."""
        intermediate = [
            estimate.value
            for _, estimate in matrix.items()
            if 0.05 < estimate.value < 0.95
        ]
        assert intermediate, "expected non-uniform (partial) propagation"


class TestDerivedMeasures:
    @pytest.fixture(scope="class")
    def analysis(self, matrix):
        return PropagationAnalysis(matrix)

    def test_ob1_exposure_ranking(self, analysis):
        exposures = analysis.module_exposures
        assert not exposures["DIST_S"].has_exposure
        assert not exposures["PRES_S"].has_exposure
        ranked = sorted(
            (e for e in exposures.values() if e.has_exposure),
            key=lambda e: -e.nonweighted_exposure,
        )
        assert ranked[0].module in {"CALC", "V_REG"}

    def test_ob4_signal_exposure_leaders(self, analysis):
        """SetValue, i and OutValue dominate Table 3."""
        exposures = dict(analysis.signal_exposures)
        leaders = sorted(exposures, key=lambda s: -exposures[s])[:4]
        assert "SetValue" in leaders
        assert "OutValue" in leaders or "i" in leaders

    def test_table4_nonzero_path_sparsity(self, analysis):
        """Table 4: of the 22 paths only a subset (13 in the paper)
        carries non-zero weight."""
        paths = analysis.ranked_output_paths("TOC2")
        nonzero = analysis.ranked_output_paths("TOC2", only_nonzero=True)
        assert len(paths) == 22
        # The paper's full grid yields 13 non-zero paths; this reduced
        # single-time grid measures several DIST_S pairs as zero, so
        # only the sparsity property (some but not all) is asserted.
        assert 3 <= len(nonzero) < 22

    def test_ob5_setvalue_outvalue_on_top_paths(self, analysis):
        top = analysis.ranked_output_paths("TOC2", only_nonzero=True)[:5]
        for path in top:
            assert "OutValue" in path.signals

    def test_placement_report_recommends_core_signals(self, analysis):
        names = {candidate.signal for candidate in analysis.placement.edm_signals}
        assert names & {"SetValue", "OutValue", "pulscnt", "i"}


class TestUniformBaseline:
    def test_paper_refutes_uniform_propagation(self, campaign_result):
        report = analyse_uniform_propagation(campaign_result)
        assert not report.corroborates_uniform_propagation
        assert report.intermediate_locations()
