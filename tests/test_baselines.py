"""Unit tests for the baseline analyses ([12] and [18])."""

from __future__ import annotations

import pytest

from repro.baselines.edm_selection import evaluate_candidates, greedy_edm_selection
from repro.baselines.uniform import analyse_uniform_propagation
from repro.injection.golden_run import GoldenRunComparison
from repro.injection.outcomes import CampaignResult, InjectionOutcome

from tests.conftest import build_toy_model


def outcome(
    module: str,
    input_signal: str,
    divergences: dict[str, int | None],
    fired: bool = True,
) -> InjectionOutcome:
    base = {"src": None, "filt": None, "out": None}
    base.update(divergences)
    return InjectionOutcome(
        case_id="case0",
        module=module,
        input_signal=input_signal,
        scheduled_time_ms=10,
        fired_at_ms=10 if fired else None,
        error_model="bitflip[0]",
        comparison=GoldenRunComparison("case0", base),
    )


@pytest.fixture()
def mixed_result() -> CampaignResult:
    """FILT.src propagates half the time; AMP.filt always."""
    result = CampaignResult(build_toy_model())
    for index in range(10):
        if index < 5:
            result.add(outcome("FILT", "src", {"filt": 11, "out": 12}))
        else:
            result.add(outcome("FILT", "src", {}))
        result.add(outcome("AMP", "filt", {"out": 11}))
    return result


class TestUniformPropagation:
    def test_partial_location_detected(self, mixed_result):
        report = analyse_uniform_propagation(mixed_result)
        assert report.n_locations == 2
        by_name = {
            (loc.module, loc.input_signal): loc for loc in report.locations
        }
        assert by_name[("FILT", "src")].ratio == pytest.approx(0.5)
        assert by_name[("AMP", "filt")].ratio == pytest.approx(1.0)

    def test_refutes_uniform_claim(self, mixed_result):
        """The paper: 'Our findings do not corroborate this assertion'."""
        report = analyse_uniform_propagation(mixed_result)
        assert not report.corroborates_uniform_propagation
        assert report.uniformity_index == pytest.approx(0.5)
        partial = report.intermediate_locations()
        assert len(partial) == 1
        assert partial[0].module == "FILT"

    def test_all_uniform_case(self):
        result = CampaignResult(build_toy_model())
        for _ in range(4):
            result.add(outcome("AMP", "filt", {"out": 3}))
            result.add(outcome("FILT", "src", {}))
        report = analyse_uniform_propagation(result)
        assert report.corroborates_uniform_propagation
        assert report.uniformity_index == 1.0

    def test_tolerance(self, mixed_result):
        tight = analyse_uniform_propagation(mixed_result, tolerance=0.0)
        assert tight.n_uniform == 1  # only the all-propagate location
        loose = analyse_uniform_propagation(mixed_result, tolerance=0.5)
        assert loose.n_uniform == 2

    def test_unfired_never_propagates(self):
        result = CampaignResult(build_toy_model())
        result.add(outcome("AMP", "filt", {"out": 3}, fired=False))
        report = analyse_uniform_propagation(result)
        assert report.locations[0].n_propagated == 0

    def test_render(self, mixed_result):
        text = analyse_uniform_propagation(mixed_result).render()
        assert "refutes" in text
        assert "FILT.src" in text
        assert "PARTIAL" in text


class TestEdmSelection:
    def test_candidate_coverage_and_latency(self, mixed_result):
        candidates, n_detectable = evaluate_candidates(mixed_result)
        by_signal = {candidate.signal: candidate for candidate in candidates}
        # Detectable: 5 FILT injections + 10 AMP injections = 15.
        assert n_detectable == 15
        assert by_signal["out"].coverage == pytest.approx(1.0)
        assert by_signal["filt"].coverage == pytest.approx(5 / 15)
        assert by_signal["out"].mean_latency_ms == pytest.approx(
            (5 * 2 + 10 * 1) / 15
        )

    def test_system_inputs_excluded_by_default(self, mixed_result):
        candidates, _ = evaluate_candidates(mixed_result)
        assert "src" not in {candidate.signal for candidate in candidates}

    def test_greedy_picks_highest_marginal_first(self, mixed_result):
        selection = greedy_edm_selection(mixed_result, max_monitors=2)
        assert selection.signals[0] == "out"
        assert selection.total_coverage == pytest.approx(1.0)
        # The second monitor adds nothing new; greedy stops early.
        assert len(selection.signals) == 1

    def test_greedy_complementary_monitors(self):
        """Two monitors covering disjoint halves are both selected."""
        result = CampaignResult(build_toy_model())
        for index in range(4):
            if index % 2:
                result.add(outcome("FILT", "src", {"filt": 11}))
            else:
                result.add(outcome("AMP", "filt", {"out": 11}))
        selection = greedy_edm_selection(result, max_monitors=3)
        assert set(selection.signals) == {"filt", "out"}
        assert selection.total_coverage == pytest.approx(1.0)
        assert selection.cumulative_coverage[0] == pytest.approx(0.5)

    def test_max_monitors_limit(self, mixed_result):
        selection = greedy_edm_selection(mixed_result, max_monitors=1)
        assert len(selection.signals) == 1

    def test_bad_limit_rejected(self, mixed_result):
        with pytest.raises(ValueError):
            greedy_edm_selection(mixed_result, max_monitors=0)

    def test_render(self, mixed_result):
        text = greedy_edm_selection(mixed_result).render()
        assert "Greedy EDM subset selection" in text
        assert "cumulative" in text

    def test_no_detectable_errors(self):
        result = CampaignResult(build_toy_model())
        result.add(outcome("AMP", "filt", {}))
        selection = greedy_edm_selection(result)
        assert selection.n_detectable == 0
        assert selection.total_coverage == 0.0
