"""Statistical soundness of the adaptive harness (repro.adaptive).

Three layers, cheapest first:

* the shared Wilson interval of :mod:`repro.core.stats` — edge cases
  and agreement across every call site that wraps it;
* the round-budget allocators of :mod:`repro.adaptive.policy` and the
  retirement bookkeeping of :class:`AdaptiveController` — exact unit
  properties (ordering, conservation, monotonicity);
* seeded Monte-Carlo coverage (``@pytest.mark.statistical``): across
  hundreds of fixed-seed experiments the achieved 95% Wilson interval
  must contain the true parameter at the nominal rate within a
  binomial tolerance, both for raw Bernoulli draws and for the
  intervals the adaptive campaign actually retires on generated
  systems (see docs/TESTING.md).
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest

from repro.adaptive import (
    REASON_CONFIDENCE,
    AdaptiveController,
    TargetMeasurement,
    TargetSnapshot,
    UniformPolicy,
    WidestFirstPolicy,
    get_policy,
    projected_half_width,
)
from repro.core.permeability import PermeabilityEstimate
from repro.core.stats import wilson_half_width, wilson_interval
from repro.injection.campaign import InjectionCampaign
from repro.injection.estimator import estimate_matrix, pair_trial_counts
from repro.obs.propagation import ArcCounts
from repro.verify.generators import generate_system
from repro.verify.oracles import default_campaign

# ---------------------------------------------------------------------------
# Wilson interval: edge cases and call-site agreement
# ---------------------------------------------------------------------------


def test_wilson_no_trials_is_vacuous():
    assert wilson_interval(0, 0) == (0.0, 1.0)
    assert wilson_interval(0, -1) == (0.0, 1.0)
    assert wilson_half_width(0, 0) == 0.5


def test_wilson_zero_errors_pins_lower_bound():
    lo, hi = wilson_interval(0, 12)
    assert lo == 0.0
    assert 0.0 < hi < 0.3


def test_wilson_all_errors_pins_upper_bound():
    lo, hi = wilson_interval(12, 12)
    assert hi == 1.0
    assert 0.7 < lo < 1.0


def test_wilson_zero_z_degenerates_to_point_estimate():
    lo, hi = wilson_interval(3, 10, z=0.0)
    assert lo == hi == pytest.approx(0.3)
    assert wilson_half_width(3, 10, z=0.0) == 0.0


def test_wilson_interval_contains_point_estimate_and_is_ordered():
    for n_errors in range(0, 17):
        lo, hi = wilson_interval(n_errors, 16)
        assert 0.0 <= lo <= n_errors / 16 <= hi <= 1.0


def test_wilson_half_width_shrinks_with_n():
    widths = [wilson_half_width(n // 2, n) for n in (4, 16, 64, 256)]
    assert widths == sorted(widths, reverse=True)


def test_wilson_call_sites_agree():
    """Every wrapper delegates to the one shared formula."""
    n_errors, n_injections = 5, 48
    expected = wilson_interval(n_errors, n_injections)
    arc = ArcCounts(
        module="M",
        input_signal="a",
        output_signal="b",
        n_injections=n_injections,
        n_propagated=n_errors,
    )
    assert arc.wilson_interval() == expected
    estimate = PermeabilityEstimate(
        value=n_errors / n_injections,
        n_errors=n_errors,
        n_injections=n_injections,
    )
    assert estimate.wilson_interval() == expected


# ---------------------------------------------------------------------------
# Budget allocators
# ---------------------------------------------------------------------------


def _snapshot(key, n_trials, capacity, p=0.5):
    module, signal = key
    return TargetSnapshot(
        module=module,
        signal=signal,
        point_estimate=p,
        n_trials=n_trials,
        capacity=capacity,
    )


def test_widest_first_funds_widest_interval_first():
    wide = _snapshot(("M", "narrow"), n_trials=40, capacity=8)
    narrow = _snapshot(("M", "wide"), n_trials=2, capacity=8)
    allocation = WidestFirstPolicy().allocate(8, [wide, narrow])
    assert allocation[narrow.key] == 8
    assert allocation.get(wide.key, 0) == 0


def test_widest_first_spills_over_after_capacity():
    first = _snapshot(("M", "a"), n_trials=0, capacity=3)
    second = _snapshot(("M", "b"), n_trials=10, capacity=5)
    allocation = WidestFirstPolicy().allocate(6, [first, second])
    assert allocation[first.key] == 3
    assert allocation[second.key] == 3


@pytest.mark.parametrize("policy_name", ["widest-first", "uniform"])
def test_allocators_conserve_budget(policy_name):
    rng = random.Random(1234)
    policy = get_policy(policy_name)
    for _ in range(50):
        targets = [
            _snapshot(
                ("M", f"s{i}"),
                n_trials=rng.randrange(0, 20),
                capacity=rng.randrange(1, 10),
                p=rng.random(),
            )
            for i in range(rng.randrange(1, 8))
        ]
        budget = rng.randrange(0, 40)
        allocation = policy.allocate(budget, targets)
        spendable = min(budget, sum(t.capacity for t in targets))
        assert sum(allocation.values()) == spendable
        for target in targets:
            assert 0 <= allocation.get(target.key, 0) <= target.capacity


def test_uniform_round_robins_across_targets():
    targets = [_snapshot(("M", f"s{i}"), 0, 10) for i in range(3)]
    allocation = UniformPolicy().allocate(7, targets)
    assert sorted(allocation.values(), reverse=True) == [3, 2, 2]


def test_projected_half_width_matches_wilson():
    assert projected_half_width(0.25, 16) == pytest.approx(
        wilson_half_width(4, 16)
    )
    assert projected_half_width(0.5, 0) == 0.5


# ---------------------------------------------------------------------------
# Controller retirement bookkeeping
# ---------------------------------------------------------------------------


def _controller(**overrides):
    pools = {
        ("M", "a"): [("w0", t, m) for t in (500, 1000) for m in range(8)],
        ("M", "b"): [("w0", t, m) for t in (500, 1000) for m in range(8)],
    }
    params = dict(ci_width=0.1, round_size=8, seed=7)
    params.update(overrides)
    return AdaptiveController(pools, **params)


def test_controller_retires_monotonically_and_never_resamples():
    controller = _controller()
    seen: dict[tuple[str, str], set] = {}
    previous_open = set(controller.open_targets())
    while not controller.finished:
        schedule = controller.next_round()
        for key, trials in schedule.items():
            assert key in previous_open, "scheduled a retired target"
            bucket = seen.setdefault(key, set())
            assert not bucket.intersection(trials), "trial re-issued"
            bucket.update(trials)
        measurements = {
            key: TargetMeasurement(half_width=0.01, point_estimate=0.0)
            for key in schedule
        }
        controller.complete_round(measurements)
        now_open = set(controller.open_targets())
        assert now_open <= previous_open, "a retired target re-opened"
        previous_open = now_open
    assert {r.reason for r in controller.retired()} == {REASON_CONFIDENCE}


def test_controller_exhausts_pool_when_interval_stays_wide():
    controller = _controller(ci_width=0.01)
    rounds = 0
    while not controller.finished:
        schedule = controller.next_round()
        controller.complete_round(
            {
                key: TargetMeasurement(half_width=0.4, point_estimate=0.5)
                for key in schedule
            }
        )
        rounds += 1
        assert rounds < 100, "controller failed to terminate"
    for retiree in controller.retired():
        assert retiree.reason == "exhausted"
        assert retiree.n_trials == 16


def test_controller_cap_retires_before_pool_end():
    controller = _controller(ci_width=0.01, max_trials_per_target=5)
    while not controller.finished:
        schedule = controller.next_round()
        controller.complete_round(
            {
                key: TargetMeasurement(half_width=0.4, point_estimate=0.5)
                for key in schedule
            }
        )
    for retiree in controller.retired():
        assert retiree.reason == "cap"
        assert retiree.n_trials == 5


# ---------------------------------------------------------------------------
# Monte-Carlo coverage (seeded, tolerance-bounded)
# ---------------------------------------------------------------------------


def _binomial_floor(n: int, p: float, sigmas: float = 4.0) -> float:
    """Lower acceptance bound for a rate estimated from ``n`` trials."""
    return p - sigmas * math.sqrt(p * (1.0 - p) / n)


@pytest.mark.statistical
def test_wilson_coverage_on_seeded_bernoulli_draws():
    """The 95% Wilson interval covers the true p at the nominal rate.

    400 fixed-seed experiments with p and n drawn per-seed; the
    empirical coverage must not fall more than four binomial standard
    errors below 95% (Wilson is conservative for small n, so the
    observed rate typically sits above the nominal one).
    """
    experiments = 400
    covered = 0
    for seed in range(experiments):
        rng = random.Random(f"wilson-coverage-{seed}")
        p = rng.uniform(0.05, 0.95)
        n = rng.randrange(8, 200)
        k = sum(rng.random() < p for _ in range(n))
        lo, hi = wilson_interval(k, n)
        covered += lo <= p <= hi
    rate = covered / experiments
    assert rate >= _binomial_floor(experiments, 0.95), (
        f"coverage {rate:.3f} over {experiments} seeded experiments "
        f"is incompatible with the nominal 95% level"
    )


@pytest.mark.statistical
def test_adaptive_retired_intervals_cover_analytical_permeability():
    """Across >= 200 generated systems, retired intervals keep coverage.

    Every seed builds a random executable XOR-mask system whose
    analytical permeabilities are exact, runs one adaptive campaign,
    and checks the achieved Wilson interval of every retired arc
    against the analytical value.  The adaptive sample is a seeded
    random prefix of a deterministic grid (sampling without
    replacement), so the binomial Wilson interval is conservative and
    the aggregate containment rate must stay above the nominal level
    minus a four-sigma binomial tolerance.
    """
    n_seeds = 200
    arcs = 0
    contained = 0
    for seed in range(n_seeds):
        generated = generate_system(seed)
        campaign = default_campaign(generated)
        config = dataclasses.replace(
            campaign.to_config(reuse=True, fast_forward=True),
            adaptive=True,
            ci_width=0.2,
        )
        result = InjectionCampaign(
            generated.system, generated.run_factory, {"gen": None}, config
        ).execute()
        rows = result.adaptive_rows()
        assert rows, f"seed {seed} retired no targets"
        analytical = generated.analytical_matrix(campaign.n_bits)
        counts = pair_trial_counts(
            estimate_matrix(result, require_complete=campaign.targets is None)
        )
        retired = {(row.module, row.input_signal) for row in rows}
        for (module, input_signal, output), (k, n) in counts.items():
            if (module, input_signal) not in retired:
                continue
            expected = analytical.get_or_none(module, input_signal, output)
            assert expected is not None
            lo, hi = wilson_interval(k, n)
            arcs += 1
            contained += lo - 1e-9 <= expected <= hi + 1e-9
    rate = contained / arcs
    assert arcs >= n_seeds, "generated corpus produced too few retired arcs"
    assert rate >= _binomial_floor(arcs, 0.95), (
        f"containment {rate:.4f} over {arcs} retired arcs from "
        f"{n_seeds} generated systems falls below the Wilson level"
    )
