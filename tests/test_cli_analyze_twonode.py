"""CLI analyze --twonode round-trip on a synthetic matrix."""

from __future__ import annotations

import json

from repro.arrestment.twonode import build_twonode_model
from repro.cli import main
from repro.core.permeability import PermeabilityMatrix


def test_analyze_twonode_roundtrip(tmp_path, capsys):
    matrix = PermeabilityMatrix.uniform(build_twonode_model(), 0.5)
    path = tmp_path / "two.json"
    path.write_text(matrix.to_json())
    assert main(["analyze", str(path), "--twonode"]) == 0
    output = capsys.readouterr().out
    assert "COMM" in output
    assert output.count("Table 4.") == 2


def test_analyze_single_node_rejects_twonode_matrix(tmp_path):
    matrix = PermeabilityMatrix.uniform(build_twonode_model(), 0.5)
    path = tmp_path / "two.json"
    path.write_text(matrix.to_json())
    try:
        main(["analyze", str(path)])
    except Exception:
        pass  # a mismatched system must not be analysed silently
    else:  # pragma: no cover - defensive
        raise AssertionError("expected a failure loading a twonode matrix")
