"""Shared hypothesis strategies for random system topologies.

Historically these strategies were defined in
``tests/test_random_topologies.py`` and imported from there by other
test modules; they now live here so every property-test file (and
``tests/conftest.py``, which re-exports them) draws from one source.

Strategies
----------
``layered_dag_systems``
    Random *analysis-only* layered DAG :class:`SystemModel`s — modules
    consume signals from earlier layers or fresh system inputs.
``dag_matrices``
    A layered DAG system paired with a fully populated random
    :class:`PermeabilityMatrix`.
``values01``
    Floats in ``[0, 1]`` (permeability values).
``generated_executable_systems``
    Seeds fed through :func:`repro.verify.generate_system` — *runnable*
    systems wired into the simulation runtime, for differential tests.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.permeability import PermeabilityMatrix
from repro.model.builder import SystemBuilder
from repro.model.system import SystemModel

__all__ = [
    "dag_matrices",
    "finalise_dag",
    "generated_executable_systems",
    "layered_dag_systems",
    "values01",
]


@st.composite
def layered_dag_systems(draw) -> SystemModel:
    """A random layered DAG: each module consumes signals from earlier
    layers (or fresh system inputs) and produces new signals."""
    n_modules = draw(st.integers(min_value=1, max_value=6))
    builder = SystemBuilder("random-dag")
    available: list[str] = []
    ext_counter = 0
    produced: list[str] = []
    for index in range(n_modules):
        n_inputs = draw(st.integers(min_value=1, max_value=3))
        inputs = []
        for _ in range(n_inputs):
            take_existing = available and draw(st.booleans())
            if take_existing:
                signal = draw(st.sampled_from(available))
                if signal in inputs:
                    continue
            else:
                signal = f"ext{ext_counter}"
                ext_counter += 1
                builder.mark_system_input(signal)
            inputs.append(signal)
        n_outputs = draw(st.integers(min_value=1, max_value=2))
        outputs = [f"s{index}_{k}" for k in range(n_outputs)]
        builder.add_module(f"M{index}", inputs=inputs, outputs=outputs)
        available.extend(outputs)
        produced.extend(outputs)
    # Anything unconsumed leaves the system.
    return finalise_dag(builder, produced)


def finalise_dag(builder: SystemBuilder, produced: list[str]) -> SystemModel:
    """Mark unconsumed produced signals as system outputs and build."""
    consumed: set[str] = set()
    for spec in builder._modules:  # test-only introspection
        consumed.update(spec.inputs)
    unconsumed = [signal for signal in produced if signal not in consumed]
    if not unconsumed:
        # Guarantee at least one system output; the model accepts a
        # signal that is both consumed internally and exported.
        unconsumed = [produced[-1]]
    builder.mark_system_outputs(unconsumed)
    return builder.build()


values01 = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def dag_matrices(draw) -> PermeabilityMatrix:
    system = draw(layered_dag_systems())
    matrix = PermeabilityMatrix(system)
    for key in system.pair_index():
        matrix.set(*key, draw(values01))
    return matrix


@st.composite
def generated_executable_systems(draw):
    """A runnable generated system (see :mod:`repro.verify.generators`)."""
    from repro.verify.generators import generate_system

    seed = draw(st.integers(min_value=0, max_value=2**16))
    return generate_system(seed)
