"""Smoke tests: the example scripts must run and produce their output.

Only the cheap examples run here (the campaign-driven ones are covered
by their underlying library tests and the benchmark suite).
"""

from __future__ import annotations

import runpy
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_prints_tables(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "Table 1." in output
        assert "Table 2." in output
        assert "Backtrack tree" in output
        assert "digraph" in output

    def test_table4_layout(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "Table 4." in output
        assert "ext_c -> c1 -> d1 -> sys_out" in output


class TestCustomSystemPlacement:
    def test_runs_and_recommends(self, capsys):
        output = run_example("custom_system_placement.py", capsys)
        assert "sensor-fusion" in output
        assert "Placement recommendations" in output
        assert "gyro" in output
        assert "digraph" in output

    def test_paths_into_cmd(self, capsys):
        output = run_example("custom_system_placement.py", capsys)
        assert "-> cmd" in output


class TestExampleScriptsExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "arrestment_experiment.py",
            "custom_system_placement.py",
            "error_model_sensitivity.py",
            "edm_placement_study.py",
        ],
    )
    def test_present_and_compilable(self, name):
        path = EXAMPLES / name
        assert path.exists()
        compile(path.read_text(encoding="utf-8"), str(path), "exec")
