"""Unit tests for the shared propagation-tree node type."""

from __future__ import annotations

from repro.core.treenode import NodeKind, PropagationNode


def small_tree() -> PropagationNode:
    root = PropagationNode(signal="out", kind=NodeKind.ROOT, module="M")
    mid = PropagationNode(
        signal="mid",
        kind=NodeKind.INTERNAL,
        module="N",
        pair_module="M",
        input_signal="mid",
        output_signal="out",
        permeability=0.5,
    )
    leaf_a = PropagationNode(
        signal="in_a",
        kind=NodeKind.BOUNDARY,
        pair_module="N",
        input_signal="in_a",
        output_signal="mid",
        permeability=0.25,
    )
    leaf_b = PropagationNode(
        signal="mid",
        kind=NodeKind.FEEDBACK,
        module="N",
        pair_module="N",
        input_signal="mid",
        output_signal="mid",
        permeability=1.0,
    )
    mid.children.extend([leaf_a, leaf_b])
    root.children.append(mid)
    return root


class TestStructure:
    def test_walk_preorder(self):
        root = small_tree()
        signals = [node.signal for node in root.walk()]
        assert signals == ["out", "mid", "in_a", "mid"]

    def test_leaves(self):
        root = small_tree()
        assert [leaf.signal for leaf in root.leaves()] == ["in_a", "mid"]

    def test_depth(self):
        assert small_tree().depth() == 3
        assert PropagationNode("x", NodeKind.ROOT).depth() == 1

    def test_n_nodes(self):
        assert small_tree().n_nodes() == 4

    def test_find(self):
        root = small_tree()
        assert len(root.find("mid")) == 2
        assert root.find("ghost") == []

    def test_is_leaf(self):
        root = small_tree()
        assert not root.is_leaf
        assert all(leaf.is_leaf for leaf in root.leaves())

    def test_edge_key(self):
        root = small_tree()
        assert root.edge_key is None
        mid = root.children[0]
        assert mid.edge_key == ("M", "mid", "out")


class TestRendering:
    def test_markers(self):
        text = small_tree().render()
        assert "==" in text  # feedback marker
        assert "*" in text  # boundary marker

    def test_weights_formatted(self):
        text = small_tree().render()
        assert "[0.500]" in text
        assert "[0.250]" in text

    def test_root_has_no_weight(self):
        first_line = small_tree().render().splitlines()[0]
        assert first_line == "out"

    def test_custom_weight_format(self):
        text = small_tree().render(weight_format="{:.1f}")
        assert "[0.5]" in text

    def test_annotation_hook(self):
        text = small_tree().render(annotate=lambda n: f"<{n.kind}>")
        assert "<root>" in text
        assert "<feedback>" in text

    def test_tree_glyphs(self):
        text = small_tree().render()
        assert "`-- " in text
        assert "|-- " in text
