"""Unit tests for the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("runs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_dict() == {"type": "counter", "value": 5}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("runs").inc(-1)


class TestGauge:
    def test_holds_latest_value(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5
        assert gauge.to_dict() == {"type": "gauge", "value": 1.5}


class TestHistogram:
    def test_bucket_assignment(self):
        histogram = Histogram("t", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            histogram.observe(value)
        # <=1.0: {0.5, 1.0}; <=2.0: {1.5}; <=5.0: {4.0}; overflow: {100.0}
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(107.0)
        assert histogram.min == 0.5
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(107.0 / 5)

    def test_empty_histogram(self):
        histogram = Histogram("t")
        assert histogram.mean == 0.0
        data = histogram.to_dict()
        assert data["count"] == 0
        assert data["min"] is None and data["max"] is None

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=(2.0, 1.0))

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry
        assert list(registry) == ["a"]

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_timer_observes_span(self):
        registry = MetricsRegistry()
        with registry.timer("phase.x.seconds"):
            pass
        histogram = registry.histogram("phase.x.seconds")
        assert histogram.count == 1
        assert histogram.total >= 0.0

    def test_merge_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("runs").inc(7)
        worker.gauge("depth").set(2.0)
        worker.histogram("t", buckets=(1.0,)).observe(0.5)
        worker.histogram("t", buckets=(1.0,)).observe(3.0)

        parent = MetricsRegistry()
        parent.counter("runs").inc(3)
        parent.histogram("t", buckets=(1.0,)).observe(0.25)
        parent.merge(worker.to_dict())

        assert parent.counter("runs").value == 10
        assert parent.gauge("depth").value == 2.0
        merged = parent.histogram("t", buckets=(1.0,))
        assert merged.count == 3
        assert merged.counts == [2, 1]
        assert merged.min == 0.25
        assert merged.max == 3.0

    def test_merge_rejects_bucket_mismatch(self):
        worker = MetricsRegistry()
        worker.histogram("t", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("t", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket layout"):
            parent.merge(worker.to_dict())

    def test_round_trip_through_dict(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("g").set(1.25)
        registry.histogram("t", buckets=(1.0,)).observe(0.5)
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()

    def test_dump_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        path = tmp_path / "metrics.json"
        registry.dump_json(path)
        data = json.loads(path.read_text())
        assert data["runs"] == {"type": "counter", "value": 1}
