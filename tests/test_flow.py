"""Tests for the static bit-flow permeability analysis (repro.flow).

Four layers:

* the interval domain and matrix container (validation, serialisation);
* transfer-mask derivation and the per-arc analysis on hand-built
  systems with stub XOR modules (point bounds, ⊤ fallback, pruning,
  cross-module-cycle widening, R013/R014 findings, SARIF);
* property tests against generated executable systems — static bounds
  are exact-tight on pure-XOR behaviours, contain every measured
  permeability, and ``static_prune`` campaigns reproduce the unpruned
  ``estimate_matrix()`` byte-for-byte on both simulation backends;
* observability integration — the ``ArcsPruned`` event, ``prune.*``
  counters, the summarize line and the dashboard reducer's parity.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings

from repro.flow import (
    BoundsInterval,
    StaticBoundsMatrix,
    analyse_run,
    analyse_system,
    derive_module_flows,
    flow_report,
    flow_rules,
)
from repro.flow.analysis import _on_cross_module_cycle
from repro.flow.bounds import TOP, UnknownArcError
from repro.injection.campaign import InjectionCampaign
from repro.injection.error_models import BitFlip, RandomReplacement, bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.model.builder import SystemBuilder
from repro.report.sarif import validate_sarif
from repro.verify.generators import generate_system
from repro.verify.oracles import default_campaign

from tests.strategies import generated_executable_systems


class StubXorModule:
    """Minimal vectorizability contract: a fixed ``vector_plan``."""

    def __init__(self, plan):
        self._plan = tuple(plan)

    def vector_plan(self):
        return self._plan


def build_chain_system(width: int = 8):
    """ext -> M0 -> s0 -> M1 -> out, all signals ``width`` bits."""
    builder = SystemBuilder("flow-chain")
    for name in ("ext", "s0", "out"):
        builder.add_signal(name, width=width)
    builder.add_module("M0", inputs=["ext"], outputs=["s0"])
    builder.add_module("M1", inputs=["s0"], outputs=["out"])
    builder.mark_system_input("ext")
    builder.mark_system_output("out")
    return builder.build()


# ---------------------------------------------------------------------------
# Interval domain and matrix container
# ---------------------------------------------------------------------------


class TestBoundsInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundsInterval(-0.1, 0.5)
        with pytest.raises(ValueError):
            BoundsInterval(0.6, 0.5)
        with pytest.raises(ValueError):
            BoundsInterval(0.5, 1.5)

    def test_classification(self):
        assert TOP.is_top and not TOP.exact and not TOP.proves_zero
        point = BoundsInterval(0.25, 0.25)
        assert point.exact and not point.is_top
        zero = BoundsInterval(0.0, 0.0)
        assert zero.proves_zero and zero.exact

    def test_contains(self):
        interval = BoundsInterval(0.25, 0.75)
        assert interval.contains(0.25)
        assert interval.contains(0.75)
        assert not interval.contains(0.8)
        assert interval.contains(0.75 + 1e-12)

    def test_str(self):
        assert str(BoundsInterval(0.75, 0.75)) == "=0.7500"
        assert str(TOP) == "[0.0000, 1.0000]"


class TestStaticBoundsMatrix:
    def test_rejects_unknown_arcs(self):
        system = build_chain_system()
        matrix = StaticBoundsMatrix(system)
        with pytest.raises(UnknownArcError):
            matrix.set("M0", "ext", "out", TOP)
        with pytest.raises(UnknownArcError):
            matrix.get("M0", "ext", "s0")  # valid pair, not yet assigned

    def test_completeness_and_round_trip(self):
        system = build_chain_system()
        matrix = StaticBoundsMatrix(system)
        matrix.set("M0", "ext", "s0", BoundsInterval(0.5, 0.5))
        assert not matrix.is_complete()
        assert matrix.missing_pairs() == (("M1", "s0", "out"),)
        matrix.set("M1", "s0", "out", TOP)
        assert matrix.is_complete()
        rebuilt = StaticBoundsMatrix.from_jsonable(matrix.to_jsonable(), system)
        assert list(rebuilt.items()) == list(matrix.items())

    def test_violations_against_measured(self):
        system = build_chain_system()
        matrix = StaticBoundsMatrix(system)
        matrix.set("M0", "ext", "s0", BoundsInterval(0.0, 0.25))
        from repro.core.permeability import PermeabilityMatrix

        measured = PermeabilityMatrix(system)
        measured.set("M0", "ext", "s0", 0.5)
        assert not matrix.contains_matrix(measured)
        assert "M0" in matrix.violations(measured)[0]
        measured = PermeabilityMatrix(system)
        measured.set("M0", "ext", "s0", 0.25)
        assert matrix.contains_matrix(measured)


# ---------------------------------------------------------------------------
# Transfer-mask derivation and the per-arc analysis
# ---------------------------------------------------------------------------


class TestDeriveModuleFlows:
    def test_stub_modules_are_exact_and_missing_are_top(self):
        system = build_chain_system()
        flows = derive_module_flows(
            system, {"M0": StubXorModule((("s0", (("ext", 0x0F),)),))}
        )
        assert flows["M0"].exact
        assert flows["M0"].mask("ext", "s0") == 0x0F
        assert not flows["M1"].exact
        with pytest.raises(ValueError):
            flows["M1"].mask("s0", "out")

    def test_no_instances_means_all_top(self):
        system = build_chain_system()
        flows = derive_module_flows(system)
        assert all(not flow.exact for flow in flows.values())


class TestFlowAnalysis:
    def test_point_bounds_from_exact_masks(self):
        system = build_chain_system(width=8)
        analysis = analyse_system(
            system,
            modules={
                "M0": StubXorModule((("s0", (("ext", 0x0F),)),)),
                "M1": StubXorModule((("out", (("s0", 0xFF),)),)),
            },
        )
        assert analysis.bounds.get("M0", "ext", "s0") == BoundsInterval(0.5, 0.5)
        assert analysis.bounds.get("M1", "s0", "out") == BoundsInterval(1.0, 1.0)
        assert analysis.dead_input_bits("M0", "ext") == 0xF0
        assert analysis.live_input_bits("M1", "s0") == 0xFF

    def test_zero_mask_row_is_prunable_and_r013(self):
        system = build_chain_system(width=8)
        analysis = analyse_system(
            system,
            modules={
                "M0": StubXorModule((("s0", (("ext", 0),)),)),
                "M1": StubXorModule((("out", (("s0", 0xFF),)),)),
            },
        )
        assert analysis.bounds.get("M0", "ext", "s0").proves_zero
        assert analysis.prunable_targets() == (("M0", "ext"),)
        report = flow_report(analysis)
        codes = {d.code for d in report.findings}
        assert "R013" in codes
        # The fully-dead row is R013's finding, not R014's.
        assert not any(
            d.location.module == "M0"
            for d in report.findings
            if d.code == "R014"
        )

    def test_partially_dead_bits_are_r014(self):
        system = build_chain_system(width=8)
        analysis = analyse_system(
            system,
            modules={
                "M0": StubXorModule((("s0", (("ext", 0x0F),)),)),
                "M1": StubXorModule((("out", (("s0", 0xFF),)),)),
            },
        )
        report = flow_report(analysis)
        r014 = [d for d in report.findings if d.code == "R014"]
        assert len(r014) == 1
        assert "4-7" in r014[0].message  # the dead high nibble

    def test_top_modules_are_never_prunable(self):
        analysis = analyse_system(build_chain_system())
        assert analysis.bounds.get("M0", "ext", "s0").is_top
        assert analysis.prunable_targets() == ()
        assert not flow_report(analysis).findings

    def test_restricted_error_band_tightens_bounds(self):
        system = build_chain_system(width=8)
        modules = {
            "M0": StubXorModule((("s0", (("ext", 0x0F),)),)),
            "M1": StubXorModule((("out", (("s0", 0xFF),)),)),
        }
        only_dead_bit = analyse_system(
            system, modules=modules, error_models=(BitFlip(bit=7),)
        )
        assert only_dead_bit.prunable_targets() == (("M0", "ext"),)
        opaque_model = analyse_system(
            system, modules=modules, error_models=(RandomReplacement(),)
        )
        assert opaque_model.bounds.get("M0", "ext", "s0") == TOP
        assert opaque_model.prunable_targets() == ()

    def test_cross_module_cycle_detection(self):
        builder = SystemBuilder("wide-cycle")
        builder.add_module("M1", inputs=["ext", "s2"], outputs=["s1"])
        builder.add_module("M2", inputs=["s1"], outputs=["s2", "out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        system = builder.build()
        assert _on_cross_module_cycle(system, "M1")
        assert _on_cross_module_cycle(system, "M2")
        chain = build_chain_system()
        assert not _on_cross_module_cycle(chain, "M0")
        assert not _on_cross_module_cycle(chain, "M1")

    def test_cross_module_cycle_widens_to_upper_bound(self):
        builder = SystemBuilder("wide-cycle")
        for name in ("ext", "s1", "s2", "out"):
            builder.add_signal(name, width=8)
        builder.add_module("M1", inputs=["ext", "s2"], outputs=["s1"])
        builder.add_module("M2", inputs=["s1"], outputs=["s2", "out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        system = builder.build()
        analysis = analyse_system(
            system,
            modules={
                "M1": StubXorModule(
                    (("s1", (("ext", 0xFF), ("s2", 0xFF))),)
                ),
                "M2": StubXorModule(
                    (("s2", (("s1", 0xFF),)), ("out", (("s1", 0x0F),)))
                ),
            },
        )
        # The loop makes within-module closures upper bounds only: the
        # low nibble surely escapes via the direct arc, the rest may
        # return through the cycle, so the interval is widened, sound
        # (lo <= hi) and never a false zero.
        arc = analysis.bounds.get("M2", "s1", "out")
        assert arc.lo == pytest.approx(0.5)
        assert arc.hi == 1.0
        assert analysis.prunable_targets() == ()

    def test_exposure_bounds_on_chain(self):
        system = build_chain_system(width=8)
        analysis = analyse_system(
            system,
            modules={
                "M0": StubXorModule((("s0", (("ext", 0x0F),)),)),
                "M1": StubXorModule((("out", (("s0", 0xFF),)),)),
            },
        )
        exposure = analysis.exposure_bounds()
        interval = exposure[("ext", "out")]
        # Only the low nibble of ext can ever reach out.
        assert interval.hi == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


class TestFlowReport:
    def _analysis(self):
        return analyse_run(generate_system(7).build_run())

    def test_render_text_sections(self):
        report = flow_report(self._analysis())
        text = report.render_text()
        assert "static bit-flow analysis" in text
        assert "transfer masks" in text
        assert "exposure (system input -> system output)" in text

    def test_json_round_trip(self):
        report = flow_report(self._analysis())
        data = json.loads(report.to_json())
        assert data["schema_version"] == 1
        assert data["system"] == report.system_name
        assert data["bounds"]["entries"]
        assert {entry["input"] for entry in data["exposure"]}

    def test_sarif_is_valid_and_flow_branded(self):
        report = flow_report(self._analysis())
        log = report.to_sarif()
        validate_sarif(log)
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-flow"
        assert {rule["id"] for rule in driver["rules"]} == {"R013", "R014"}
        assert "STATIC_ANALYSIS" in driver["rules"][0]["helpUri"]

    def test_flow_rules_registry(self):
        assert [rule.code for rule in flow_rules()] == ["R013", "R014"]


# ---------------------------------------------------------------------------
# Properties against generated executable systems
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(generated_executable_systems())
def test_bounds_exact_on_pure_xor_systems(gen):
    campaign = default_campaign(gen)
    analysis = analyse_run(
        gen.build_run(),
        error_models=tuple(bit_flip_models(campaign.n_bits)),
    )
    bounds = analysis.bounds
    assert bounds.is_complete()
    analytical = gen.analytical_matrix(campaign.n_bits)
    for (module, i, o), interval in bounds.items():
        assert interval.exact
        assert interval.lo == pytest.approx(
            analytical.get(module, i, o), abs=1e-12
        )


@settings(max_examples=6, deadline=None)
@given(generated_executable_systems())
def test_measured_within_bounds_and_prune_parity(gen):
    campaign = default_campaign(gen)
    # A narrow error band makes whole rows provably dead more often,
    # so the pruning path is actually exercised.
    models = (BitFlip(bit=0),)
    analysis = analyse_run(gen.build_run(), error_models=models)
    for backend in ("reference", "batched"):
        config = dataclasses.replace(
            campaign.to_config(reuse=True, fast_forward=True, backend=backend),
            error_models=models,
        )
        result = InjectionCampaign(
            gen.system, gen.run_factory, {"gen": None}, config
        ).execute()
        measured = estimate_matrix(result)
        assert analysis.bounds.contains_matrix(measured), (
            analysis.bounds.violations(measured)
        )
        pruned_result = InjectionCampaign(
            gen.system,
            gen.run_factory,
            {"gen": None},
            dataclasses.replace(config, static_prune=True),
        ).execute()
        assert set(pruned_result.pruned_targets()) == set(
            analysis.prunable_targets()
        )
        assert (
            estimate_matrix(pruned_result).to_jsonable()
            == measured.to_jsonable()
        )


def test_pruned_campaign_observability_round_trip(tmp_path):
    """ArcsPruned flows through events, metrics, summary and reducer."""
    from repro.obs import CampaignObserver
    from repro.obs.dash.reducer import CampaignStateReducer, validate_snapshot
    from repro.obs.events import ArcsPruned, read_events, validate_events
    from repro.obs.summary import render_summary, summarize_events

    gen = generate_system(0)
    campaign = default_campaign(gen)
    config = dataclasses.replace(
        campaign.to_config(reuse=True, fast_forward=True),
        error_models=(BitFlip(bit=0),),
        static_prune=True,
    )
    events_path = tmp_path / "events.jsonl"
    observer = CampaignObserver.to_files(
        events_path=str(events_path), with_metrics=True, system=gen.system
    )
    result = InjectionCampaign(
        gen.system, gen.run_factory, {"gen": None}, config, observer=observer
    ).execute()
    observer.close()
    assert result.n_pruned_runs() > 0

    assert validate_events(events_path) > 0
    pruned_events = [
        parsed.event
        for parsed in read_events(events_path)
        if isinstance(parsed.event, ArcsPruned)
    ]
    assert len(pruned_events) == 1
    event = pruned_events[0]
    assert set(event.targets) == set(result.pruned_targets())
    assert (
        len(event.targets) * event.n_injections_per_target
        == result.n_pruned_runs()
    )

    metrics = observer.metrics
    assert metrics.counter("prune.targets").value == len(event.targets)
    assert (
        metrics.counter("prune.runs_skipped").value == result.n_pruned_runs()
    )

    summary = summarize_events(read_events(events_path))
    assert summary.n_pruned_targets == len(event.targets)
    assert summary.n_pruned_runs == result.n_pruned_runs()
    assert "static pruning:" in render_summary(summary)

    reducer = CampaignStateReducer.from_events_file(events_path)
    snapshot = reducer.snapshot()
    validate_snapshot(snapshot)
    assert snapshot["counters"]["pruned"] == result.n_pruned_runs()
    assert snapshot["counters"]["n_runs"] == len(result)
    assert snapshot["progress"]["done"] == snapshot["progress"]["total"]
    # The reducer's live matrix folds pruned rows in exactly as the
    # post-hoc estimator does.
    assert reducer.matrix_jsonable() == estimate_matrix(result).to_jsonable()


def test_prune_actually_skips_runs_and_counts_stay_complete():
    gen = generate_system(0)  # seed 0 prunes 3 targets under bit-0 flips
    campaign = default_campaign(gen)
    config = dataclasses.replace(
        campaign.to_config(reuse=True, fast_forward=True),
        error_models=(BitFlip(bit=0),),
        static_prune=True,
    )
    run = InjectionCampaign(gen.system, gen.run_factory, {"gen": None}, config)
    result = run.execute()
    assert result.n_pruned_runs() > 0
    assert len(result) + result.n_pruned_runs() == run.total_runs()
    counts = result.pair_counts()
    for module, signal in result.pruned_targets():
        for output in gen.system.module(module).outputs:
            entry = counts[(module, signal, output)]
            assert entry.n_errors == 0
            assert entry.n_injections == config.runs_per_target()
