"""The content-addressed result store and incremental campaigns.

The contract under test (docs/INCREMENTAL.md): a campaign executed
against a warm store recomposes outcomes, estimate matrix and event
stream byte-identical to a cold run while executing zero injection
runs; editing one module re-runs exactly the rows whose dependency
cone contains it; and every corruption mode of the on-disk artifacts
degrades to a cache miss, never to a wrong result.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time

import pytest

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip, StuckAtZero, bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.store import (
    ResultStore,
    UnitKeyBuilder,
    canonical_json,
    content_digest,
    dependency_cone,
    environment_couples_signals,
)
from repro.verify.generators import (
    GeneratedSystem,
    LcgEnvironment,
    generate_system,
)

CASES = {"w0": None}


def _campaign(gen, store=None, observer=None, **overrides):
    config = CampaignConfig(
        duration_ms=overrides.pop("duration_ms", 200),
        injection_times_ms=overrides.pop("injection_times_ms", (30, 110)),
        error_models=overrides.pop("error_models", tuple(bit_flip_models(4))),
        seed=overrides.pop("seed", 5),
        store=None if store is None else str(store),
        **overrides,
    )
    return InjectionCampaign(
        gen.system, gen.run_factory, CASES, config, observer=observer
    )


def _outs(result):
    return [outcome.to_jsonable() for outcome in result]


def _matrix(result):
    return estimate_matrix(result, require_complete=False).to_jsonable()


def _edit_module(gen: GeneratedSystem, name: str) -> GeneratedSystem:
    """The same system with one module's transfer masks changed."""

    def mutate(module):
        if module.name != name:
            return module
        masks = {
            i: {o: mask ^ 1 for o, mask in outputs.items()}
            for i, outputs in module.masks.items()
        }
        return dataclasses.replace(module, masks=masks)

    spec = dataclasses.replace(
        gen.spec, modules=tuple(mutate(m) for m in gen.spec.modules)
    )
    return GeneratedSystem(spec)


class TestWarmReplay:
    def test_cold_run_matches_storeless_baseline(self, tmp_path):
        gen = generate_system(11)
        baseline = _campaign(gen).execute()
        campaign = _campaign(gen, store=tmp_path)
        result = campaign.execute()
        stats = campaign.last_store_stats
        assert stats.hits == 0 and stats.misses > 0
        assert stats.runs_executed == len(result)
        assert _outs(result) == _outs(baseline)
        assert _matrix(result) == _matrix(baseline)

    def test_warm_run_executes_nothing_and_is_byte_identical(self, tmp_path):
        gen = generate_system(11)
        cold = _campaign(gen, store=tmp_path).execute()
        campaign = _campaign(gen, store=tmp_path)
        warm = campaign.execute()
        stats = campaign.last_store_stats
        assert stats.runs_executed == 0
        assert stats.misses == 0 and stats.uncacheable == 0
        assert stats.runs_reused == len(cold)
        assert _outs(warm) == _outs(cold)
        assert _matrix(warm) == _matrix(cold)

    def test_warm_parallel_executes_nothing(self, tmp_path):
        gen = generate_system(11)
        cold = _campaign(gen, store=tmp_path).execute()
        campaign = _campaign(gen, store=tmp_path)
        warm = campaign.execute_parallel(max_workers=2)
        assert campaign.last_store_stats.runs_executed == 0
        assert _outs(warm) == _outs(cold)

    def test_cold_parallel_populates_store(self, tmp_path):
        gen = generate_system(11)
        baseline = _campaign(gen).execute()
        cold = _campaign(gen, store=tmp_path)
        result = cold.execute_parallel(max_workers=2)
        assert cold.last_store_stats.runs_executed == len(result)
        assert _outs(result) == _outs(baseline)
        warm = _campaign(gen, store=tmp_path)
        assert _outs(warm.execute()) == _outs(baseline)
        assert warm.last_store_stats.runs_executed == 0

    def test_no_cache_reexecutes_and_refreshes(self, tmp_path):
        gen = generate_system(11)
        cold = _campaign(gen, store=tmp_path).execute()
        campaign = _campaign(gen, store=tmp_path, no_cache=True)
        refreshed = campaign.execute()
        stats = campaign.last_store_stats
        assert stats.hits == 0
        assert stats.runs_executed == len(refreshed)
        assert _outs(refreshed) == _outs(cold)
        # The refresh rewrote (not invalidated) every artifact.
        warm = _campaign(gen, store=tmp_path)
        warm.execute()
        assert warm.last_store_stats.runs_executed == 0

    def test_backend_is_excluded_from_the_key(self, tmp_path):
        pytest.importorskip("numpy")
        gen = generate_system(11)
        _campaign(gen, store=tmp_path, backend="reference").execute()
        campaign = _campaign(gen, store=tmp_path, backend="batched")
        campaign.execute()
        assert campaign.last_store_stats.runs_executed == 0

    def test_seed_change_invalidates_everything(self, tmp_path):
        gen = generate_system(11)
        _campaign(gen, store=tmp_path, seed=5).execute()
        campaign = _campaign(gen, store=tmp_path, seed=6)
        campaign.execute()
        stats = campaign.last_store_stats
        assert stats.hits == 0 and stats.misses > 0


class TestInvalidation:
    def test_module_edit_dirties_exactly_its_cone(self, tmp_path):
        gen = generate_system(11)
        system = gen.system
        _campaign(gen, store=tmp_path).execute()
        for victim in system.module_names():
            edited = _edit_module(gen, victim)
            campaign = _campaign(edited, store=tmp_path)
            campaign.execute()
            stats = campaign.last_store_stats
            dirty_modules = [
                name
                for name in system.module_names()
                if victim in dependency_cone(system, name)
            ]
            expected = sum(
                len(system.module(name).inputs) for name in dirty_modules
            )
            assert stats.misses == expected, (
                f"editing {victim}: {stats.misses} misses, expected "
                f"{expected} (cone rows of {dirty_modules})"
            )

    def test_mixed_replay_matches_cold_run_of_edited_system(self, tmp_path):
        gen = generate_system(11)
        _campaign(gen, store=tmp_path).execute()
        edited = _edit_module(gen, gen.spec.modules[-1].name)
        mixed = _campaign(edited, store=tmp_path)
        mixed_result = mixed.execute()
        stats = mixed.last_store_stats
        assert stats.hits > 0 and stats.misses > 0
        cold_result = _campaign(edited).execute()
        assert _outs(mixed_result) == _outs(cold_result)
        assert _matrix(mixed_result) == _matrix(cold_result)

    def test_mixed_replay_parallel(self, tmp_path):
        gen = generate_system(11)
        _campaign(gen, store=tmp_path).execute()
        edited = _edit_module(gen, gen.spec.modules[-1].name)
        mixed = _campaign(edited, store=tmp_path)
        mixed_result = mixed.execute_parallel(max_workers=2)
        assert mixed.last_store_stats.hits > 0
        assert _outs(mixed_result) == _outs(_campaign(edited).execute())

    def test_value_dependent_models_widen_the_cone(self, tmp_path):
        """Stuck-at corruption depends on the value it hits, so module
        edits must dirty every row, not just the cone's."""
        gen = generate_system(11)
        models = (StuckAtZero(0), BitFlip(1))
        _campaign(gen, store=tmp_path, error_models=models).execute()
        edited = _edit_module(gen, gen.spec.modules[-1].name)
        campaign = _campaign(edited, store=tmp_path, error_models=models)
        campaign.execute()
        stats = campaign.last_store_stats
        assert stats.hits == 0 and stats.misses == len(campaign.targets)


class TestRobustness:
    def _artifacts(self, store_dir):
        return sorted((store_dir / "units").glob("*/*.json"))

    def test_truncated_artifact_is_a_silent_miss(self, tmp_path):
        gen = generate_system(11)
        cold = _campaign(gen, store=tmp_path).execute()
        victim = self._artifacts(tmp_path)[0]
        victim.write_text('{"torn payload')
        campaign = _campaign(gen, store=tmp_path)
        warm = campaign.execute()
        stats = campaign.last_store_stats
        assert stats.misses == 1 and stats.rejected == 0
        assert stats.runs_executed > 0
        assert _outs(warm) == _outs(cold)
        # The re-executed row healed the artifact in place.
        healed = _campaign(gen, store=tmp_path)
        healed.execute()
        assert healed.last_store_stats.runs_executed == 0

    def test_digest_mismatch_is_rejected_with_event(self, tmp_path):
        from repro.obs import CampaignObserver
        from repro.obs.events import StoreArtifactRejected, read_events

        gen = generate_system(11)
        cold = _campaign(gen, store=tmp_path).execute()
        victim = self._artifacts(tmp_path)[0]
        data = json.loads(victim.read_text())
        data["payload"]["n_runs"] = 999  # valid JSON, wrong digest
        victim.write_text(json.dumps(data))

        events_path = tmp_path / "events.jsonl"
        observer = CampaignObserver.to_files(
            events_path=str(events_path), with_metrics=True, system=gen.system
        )
        campaign = _campaign(gen, store=tmp_path, observer=observer)
        warm = campaign.execute()
        observer.close()
        stats = campaign.last_store_stats
        assert stats.rejected == 1
        assert stats.misses == 1
        assert _outs(warm) == _outs(cold)
        assert observer.metrics.counter("store.rejected").value == 1
        rejected = [
            parsed.event
            for parsed in read_events(events_path)
            if isinstance(parsed.event, StoreArtifactRejected)
        ]
        assert len(rejected) == 1
        assert rejected[0].reason == "payload digest mismatch"
        assert rejected[0].key in str(victim)

    def test_tampered_outcome_identity_is_a_miss(self, tmp_path):
        """A payload whose digest was recomputed after tampering still
        fails the outcome-identity check during decoding."""
        gen = generate_system(11)
        _campaign(gen, store=tmp_path).execute()
        victim = self._artifacts(tmp_path)[0]
        data = json.loads(victim.read_text())
        payload = data["payload"]
        payload["outcomes"][0]["module"] = "IMPOSTOR"
        store = ResultStore(tmp_path)
        store.put(data["key"], payload)  # recomputes a valid digest
        campaign = _campaign(gen, store=tmp_path)
        campaign.execute()
        stats = campaign.last_store_stats
        assert stats.misses == 1 and stats.rejected == 0

    def test_concurrent_writers_never_expose_torn_artifacts(self, tmp_path):
        store = ResultStore(tmp_path)
        key = content_digest("contended-unit")
        payloads = [
            {"kind": "unit", "filler": "x" * 4096, "n": n} for n in range(2)
        ]
        stop = threading.Event()
        errors: list[Exception] = []

        def writer(payload):
            while not stop.is_set():
                try:
                    store.put(key, payload)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=writer, args=(payload,))
            for payload in payloads
        ]
        for thread in threads:
            thread.start()
        try:
            reader = ResultStore(tmp_path)
            for _ in range(300):
                fetched = reader.fetch(key)
                assert fetched is not None, "reader saw a torn artifact"
                assert fetched["filler"] == "x" * 4096
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        leftovers = list((tmp_path / "units").glob("*/.*.tmp"))
        assert leftovers == []

    def test_gc_removes_invalid_expired_and_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        keep = content_digest("keep")
        store.put(keep, {"kind": "unit", "n": 1})
        shard = tmp_path / "units" / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        invalid = shard / ("ab" + "0" * 62 + ".json")
        invalid.write_text("not json")
        stray = shard / ".leftover.123.tmp"
        stray.write_text("partial")

        removed = store.gc()
        assert invalid in removed and stray in removed
        assert store.fetch(keep) is not None

        removed = store.gc(max_age_days=1.0, now=time.time() + 2 * 86400)
        assert len(removed) == 1
        assert store.fetch(keep) is None

    def test_pruned_records_interplay_with_full_units(self, tmp_path):
        """Pruned-target records never clobber full units, and a full
        unit satisfies a later unpruned campaign for the same row."""
        gen = generate_system(0)  # seed 0: 3 prunable targets at bit 0
        models = (BitFlip(0),)
        kw = dict(
            duration_ms=200, injection_times_ms=(30, 110),
            error_models=models, seed=5,
        )
        baseline = _campaign(gen, **dict(kw)).execute()

        # Cold pruned campaign: pruned rows become "pruned" records.
        pruned = _campaign(gen, store=tmp_path, static_prune=True, **dict(kw))
        pruned_result = pruned.execute()
        assert pruned_result.n_pruned_runs() > 0
        kinds = {
            json.loads(path.read_text())["payload"]["kind"]
            for path in sorted((tmp_path / "units").glob("*/*.json"))
        }
        assert kinds == {"unit", "pruned"}

        # An unpruned campaign treats a pruned record as a miss and
        # replaces it with the full unit (same key, same outcomes).
        full = _campaign(gen, store=tmp_path, **dict(kw))
        full_result = full.execute()
        stats = full.last_store_stats
        assert stats.misses == len(pruned_result.pruned_targets())
        assert _outs(full_result) == _outs(baseline)

        # The full units now satisfy *both* campaign flavours warm; the
        # pruned campaign never overwrites them with pruned records.
        warm_pruned = _campaign(
            gen, store=tmp_path, static_prune=True, **dict(kw)
        )
        warm_pruned.execute()
        assert warm_pruned.last_store_stats.runs_executed == 0
        warm_full = _campaign(gen, store=tmp_path, **dict(kw))
        warm_full.execute()
        assert warm_full.last_store_stats.runs_executed == 0
        assert warm_full.last_store_stats.misses == 0


class TestUncacheable:
    def test_opaque_case_state_marks_units_uncacheable(self, tmp_path):
        class OpaqueCase:
            def __init__(self):
                self.fn = lambda value: value  # no canonical form

        gen = generate_system(11)
        config = CampaignConfig(
            duration_ms=200, injection_times_ms=(30,),
            error_models=(BitFlip(0),), seed=5, store=str(tmp_path),
        )
        campaign = InjectionCampaign(
            gen.system, gen.run_factory, {"w0": OpaqueCase()}, config
        )
        campaign.execute()
        stats = campaign.last_store_stats
        assert stats.uncacheable == len(campaign.targets)
        assert stats.hits == 0 and stats.misses == 0
        assert list((tmp_path / "units").glob("*/*.json")) == []
        # Uncacheable means re-executed every campaign — never stale.
        again = InjectionCampaign(
            gen.system, gen.run_factory, {"w0": OpaqueCase()}, config
        )
        again.execute()
        assert again.last_store_stats.runs_executed > 0


class TestFingerprints:
    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'
        assert content_digest({"b": 1, "a": 2}) == content_digest(
            {"a": 2, "b": 1}
        )

    def test_dependency_cone_is_transitive_consumer_closure(self):
        gen = generate_system(11)
        system = gen.system
        for name in system.module_names():
            cone = dependency_cone(system, name)
            assert name in cone
            # Closure property: every consumer of a cone member's
            # outputs is itself in the cone.
            for member in cone:
                for output in system.module(member).outputs:
                    for port in system.consumers_of(output):
                        assert port.module in cone

    def test_environment_coupling_probe(self):
        assert not environment_couples_signals(
            LcgEnvironment(1, ("a",), ("b",))
        )

        class Physics:
            pass

        assert environment_couples_signals(Physics())

    def test_keys_differ_per_target_and_match_across_builders(self):
        gen = generate_system(11)
        config = CampaignConfig(
            duration_ms=200, injection_times_ms=(30,),
            error_models=(BitFlip(0),), seed=5,
        )
        targets = tuple(
            (name, signal)
            for name in gen.system.module_names()
            for signal in gen.system.module(name).inputs
        )
        keys_a = UnitKeyBuilder(
            gen.system, gen.run_factory, config
        ).keys_for_case("w0", None, targets)
        keys_b = UnitKeyBuilder(
            gen.system, gen.run_factory, config
        ).keys_for_case("w0", None, targets)
        digests_a = {t: k.digest for t, k in keys_a.items()}
        digests_b = {t: k.digest for t, k in keys_b.items()}
        assert digests_a == digests_b
        assert len(set(digests_a.values())) == len(targets)
        assert all(key.cacheable for key in keys_a.values())


class TestObservability:
    def test_unit_reuse_flows_through_events_summary_and_reducer(
        self, tmp_path
    ):
        from repro.obs import CampaignObserver
        from repro.obs.dash.reducer import (
            CampaignStateReducer,
            validate_snapshot,
        )
        from repro.obs.events import UnitReused, read_events, validate_events
        from repro.obs.summary import render_summary, summarize_events

        gen = generate_system(11)
        cold = _campaign(gen, store=tmp_path).execute()
        events_path = tmp_path / "events.jsonl"
        observer = CampaignObserver.to_files(
            events_path=str(events_path), with_metrics=True, system=gen.system
        )
        campaign = _campaign(gen, store=tmp_path, observer=observer)
        warm = campaign.execute()
        observer.close()
        stats = campaign.last_store_stats

        assert validate_events(events_path) > 0
        reused = [
            parsed.event
            for parsed in read_events(events_path)
            if isinstance(parsed.event, UnitReused)
        ]
        assert len(reused) == stats.hits
        assert sum(event.n_runs for event in reused) == stats.runs_reused
        assert observer.metrics.counter("store.hits").value == stats.hits
        assert (
            observer.metrics.counter("store.runs_reused").value
            == stats.runs_reused
        )

        summary = summarize_events(read_events(events_path))
        assert summary.n_cached_units == stats.hits
        assert summary.n_cached_runs == stats.runs_reused
        assert "result store:" in render_summary(summary)

        reducer = CampaignStateReducer.from_events_file(events_path)
        snapshot = reducer.snapshot()
        validate_snapshot(snapshot)
        assert snapshot["counters"]["cached"] == stats.runs_reused
        assert snapshot["progress"]["done"] == snapshot["progress"]["total"]
        # The reducer's live matrix over replayed cached outcomes folds
        # to the same estimate as the recomposed result.
        assert reducer.matrix_jsonable() == estimate_matrix(warm).to_jsonable()
        assert _outs(warm) == _outs(cold)


class TestStoreCli:
    def _populate(self, tmp_path):
        gen = generate_system(11)
        _campaign(gen, store=tmp_path).execute()

    def test_ls_lists_units(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path)
        assert main(["store", "ls", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "valid artifact(s)" in output
        assert "unit" in output

    def test_verify_exits_nonzero_on_corruption(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path)
        assert main(["store", "verify", str(tmp_path)]) == 0
        victim = sorted((tmp_path / "units").glob("*/*.json"))[0]
        victim.write_text("garbage")
        assert main(["store", "verify", str(tmp_path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_gc_heals_a_corrupted_store(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path)
        victim = sorted((tmp_path / "units").glob("*/*.json"))[0]
        victim.write_text("garbage")
        assert main(["store", "gc", str(tmp_path)]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out
        assert main(["store", "verify", str(tmp_path)]) == 0

    def test_campaign_store_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["campaign", "--store", "cache-dir", "--no-cache"]
        )
        assert args.store == "cache-dir"
        assert args.no_cache is True
