"""Unit tests for the typed event stream, sinks and manifests."""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    CampaignFinished,
    CampaignStarted,
    CheckpointReused,
    ChunkCompleted,
    EventStream,
    InjectionFired,
    JsonlSink,
    MultiSink,
    OutcomeClassified,
    PrettyPrintSink,
    RingBufferSink,
    RunStarted,
    build_manifest,
    decode_event,
    encode_event,
    read_events,
    validate_events,
)

from tests.conftest import build_toy_model, toy_factory


def sample_outcome_event() -> OutcomeClassified:
    return OutcomeClassified(
        case_id="case00",
        module="FILT",
        signal="src",
        time_ms=100,
        error_model="bitflip[9]",
        fired=True,
        outcome="propagated",
        diverged={"filt": 100, "out": 100},
        propagated_outputs=("filt",),
    )


class TestEnvelope:
    def test_encode_decode_round_trip(self):
        event = sample_outcome_event()
        record = encode_event(event, seq=7, ts=123.5)
        assert record["v"] == EVENT_SCHEMA_VERSION
        assert record["type"] == "OutcomeClassified"
        parsed = decode_event(json.loads(json.dumps(record)))
        assert parsed.seq == 7
        assert parsed.ts == 123.5
        assert parsed.event == event
        assert isinstance(parsed.event.propagated_outputs, tuple)

    def test_rejects_unregistered_event(self):
        @dataclasses.dataclass(frozen=True)
        class Rogue:
            x: int

        with pytest.raises(TypeError):
            encode_event(Rogue(1), seq=0, ts=0.0)

    def test_rejects_future_schema_version(self):
        record = encode_event(RunStarted("c", "golden"), seq=0, ts=0.0)
        record["v"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            decode_event(record)

    def test_rejects_unknown_type(self):
        record = encode_event(RunStarted("c", "golden"), seq=0, ts=0.0)
        record["type"] = "MysteryEvent"
        with pytest.raises(ValueError, match="unknown event type"):
            decode_event(record)

    def test_rejects_unknown_fields(self):
        record = encode_event(RunStarted("c", "golden"), seq=0, ts=0.0)
        record["data"]["surprise"] = 1
        with pytest.raises(ValueError, match="unexpected fields"):
            decode_event(record)

    def test_rejects_missing_fields(self):
        record = encode_event(
            CheckpointReused("c", time_ms=100, skipped_ms=100), seq=0, ts=0.0
        )
        del record["data"]["skipped_ms"]
        with pytest.raises(ValueError, match="CheckpointReused"):
            decode_event(record)


class TestSinks:
    def test_jsonl_sink_and_read_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        stream = EventStream(JsonlSink(path))
        stream.emit(RunStarted("case00", "golden"))
        stream.emit(sample_outcome_event())
        stream.close()
        events = list(read_events(path))
        assert [parsed.type_name for parsed in events] == [
            "RunStarted", "OutcomeClassified",
        ]
        assert [parsed.seq for parsed in events] == [0, 1]
        assert validate_events(path) == 2

    def test_read_events_reports_line_numbers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"v": 1, "seq": 0, "ts": 0, "type": "Nope", "data": {}}\n')
        with pytest.raises(ValueError, match="events.jsonl:1"):
            list(read_events(path))

    def test_validate_rejects_drifted_payload(self, tmp_path):
        record = encode_event(RunStarted("c", "golden"), seq=0, ts=0.0)
        record["extra_envelope_key"] = True  # writer/parser drift
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="round-trip mismatch"):
            validate_events(path)

    def test_ring_buffer_keeps_last_n(self):
        sink = RingBufferSink(capacity=2)
        stream = EventStream(sink)
        for index in range(4):
            stream.emit(RunStarted(f"case{index:02d}", "golden"))
        assert [record["seq"] for record in sink.records] == [2, 3]
        assert [parsed.event.case_id for parsed in sink.events()] == [
            "case02", "case03",
        ]

    def test_ring_buffer_unbounded(self):
        sink = RingBufferSink(capacity=None)
        stream = EventStream(sink)
        for index in range(2000):
            stream.emit(RunStarted(f"case{index}", "golden"))
        assert len(sink.records) == 2000

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_pretty_sink_narrates_campaign_events(self):
        buffer = io.StringIO()
        stream = EventStream(PrettyPrintSink(stream=buffer))
        stream.emit(
            CampaignStarted(
                manifest={}, total_runs=8, n_cases=1, n_targets=2,
                runs_per_target=4, mode="serial",
            )
        )
        stream.emit(RunStarted("case00", "golden"))  # not narrated
        stream.emit(CampaignFinished(n_runs=8, n_fired=8, elapsed_s=1.0))
        text = buffer.getvalue()
        assert "campaign started: 8 runs" in text
        assert "campaign finished: 8 runs" in text
        assert "RunStarted" not in text

    def test_multi_sink_fans_out(self, tmp_path):
        ring = RingBufferSink()
        path = tmp_path / "events.jsonl"
        stream = EventStream(MultiSink(JsonlSink(path), ring))
        stream.emit(ChunkCompleted(0, "case00", 2, 8, 0.5))
        stream.close()
        assert len(ring.records) == 1
        assert validate_events(path) == 1


class TestManifest:
    def build_campaign(self, seed=2001) -> InjectionCampaign:
        config = CampaignConfig(
            duration_ms=64,
            injection_times_ms=(16, 32),
            error_models=tuple(bit_flip_models(2)),
            seed=seed,
        )
        return InjectionCampaign(build_toy_model(), toy_factory, ["c"], config)

    def test_manifest_identity_fields(self):
        manifest = build_manifest(self.build_campaign())
        assert manifest.schema_version == EVENT_SCHEMA_VERSION
        assert manifest.seed == 2001
        assert manifest.n_cases == 1
        assert manifest.n_targets == 2  # FILT.src and AMP.filt
        assert manifest.total_runs == 2 * 2 * 2
        assert manifest.injection_times_ms == (16, 32)
        assert manifest.host["python"]
        data = manifest.to_dict()
        round_tripped = json.loads(json.dumps(data))
        assert round_tripped == {**data, "injection_times_ms": [16, 32]}

    def test_config_hash_tracks_the_grid(self):
        base = build_manifest(self.build_campaign())
        same = build_manifest(self.build_campaign())
        other = build_manifest(self.build_campaign(seed=7))
        assert base.config_hash == same.config_hash
        assert base.config_hash != other.config_hash
