"""Hand-built (system, campaign) triples for the verify test modules.

Shared between the shrinker tests and the CLI exit-code tests, so the
deterministic *failing* workload lives in exactly one place.
"""

from __future__ import annotations

from repro.verify import GeneratedModule, GeneratedSystemSpec, VerifyCampaign


def small_passing_triple() -> tuple[GeneratedSystemSpec, VerifyCampaign]:
    """A tiny single-module system on which the oracle passes."""
    spec = GeneratedSystemSpec(
        name="tiny-pass",
        seed=0,
        n_slots=1,
        env_seed=42,
        widths={"in0": 16, "out0": 16},
        system_inputs=("in0",),
        system_outputs=("out0",),
        modules=(
            GeneratedModule(
                name="M0",
                inputs=("in0",),
                outputs=("out0",),
                # Half the 4-bit flip band propagates: P = 0.5.
                masks={"in0": {"out0": 0x000A}},
            ),
        ),
        error_probabilities={"in0": 0.2},
    )
    campaign = VerifyCampaign(
        duration_ms=10, injection_times_ms=(2, 5), n_bits=4, seed=9
    )
    return spec, campaign


def unfired_trap_triple() -> tuple[GeneratedSystemSpec, VerifyCampaign]:
    """A failing triple: one module's trap can never fire.

    ``BAD`` runs with period 4 (activations at 0, 4, 8) while the
    campaign injects at t=9 of an 11 ms run — no activation at or after
    the injection instant, so the trap stays unfired, the unfired run
    still counts in the denominator, and measured permeability (0)
    contradicts the exact analytical value (1).  Three benign period-1
    chain modules ride along as shrinker fodder.
    """
    modules = [
        GeneratedModule(
            name="BAD",
            inputs=("bad_in",),
            outputs=("bad_out",),
            masks={"bad_in": {"bad_out": 0x000F}},
            period_ms=4,
            phase=0,
        )
    ]
    widths = {"bad_in": 16, "bad_out": 16, "ok0_in": 16}
    previous = "ok0_in"
    for index in range(3):
        output = f"ok{index}_out"
        widths[output] = 16
        modules.append(
            GeneratedModule(
                name=f"OK{index}",
                inputs=(previous,),
                outputs=(output,),
                masks={previous: {output: 0x00FF}},
            )
        )
        previous = output
    spec = GeneratedSystemSpec(
        name="unfired-trap",
        seed=0,
        n_slots=4,
        env_seed=99,
        widths=widths,
        system_inputs=("bad_in", "ok0_in"),
        system_outputs=("bad_out", previous),
        modules=tuple(modules),
        error_probabilities={"bad_in": 0.3, "ok0_in": 0.3},
    )
    campaign = VerifyCampaign(
        duration_ms=11, injection_times_ms=(9,), n_bits=4, seed=3
    )
    return spec, campaign
