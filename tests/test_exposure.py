"""Unit tests for the exposure measures (Eqs. 4–6)."""

from __future__ import annotations

import pytest

from repro.core.backtrack import build_all_backtrack_trees, build_backtrack_tree
from repro.core.exposure import (
    all_module_exposures,
    all_signal_exposures,
    module_exposure,
    rank_by_exposure,
    signal_exposure,
)
from repro.core.graph import PermeabilityGraph
from repro.core.permeability import PermeabilityMatrix
from repro.model.examples import fig2_permeabilities


@pytest.fixture()
def fig2_graph(fig2_matrix):
    return PermeabilityGraph(fig2_matrix)


class TestModuleExposure:
    def test_input_only_modules_have_no_exposure(self, fig2_graph):
        """OB1: modules receiving only system inputs have no exposure."""
        for module in ("A", "C"):
            exposure = module_exposure(fig2_graph, module)
            assert exposure.exposure is None
            assert not exposure.has_exposure
            assert exposure.nonweighted_exposure == 0.0
            assert exposure.n_incoming_arcs == 0

    def test_eq4_is_mean_of_incoming_weights(self, fig2_graph):
        values = fig2_permeabilities()
        exposure = module_exposure(fig2_graph, "E")
        incoming = [
            values[("B", "b1", "b2")],
            values[("B", "a1", "b2")],
            values[("D", "b1", "d1")],
            values[("D", "c1", "d1")],
        ]
        assert exposure.n_incoming_arcs == 4
        assert exposure.exposure == pytest.approx(sum(incoming) / 4)
        assert exposure.nonweighted_exposure == pytest.approx(sum(incoming))

    def test_eq5_includes_self_loops(self, fig2_graph):
        values = fig2_permeabilities()
        exposure = module_exposure(fig2_graph, "B")
        # Incoming: A's pair (ext_a->a1) plus B's own two b1 pairs.
        expected = (
            values[("A", "ext_a", "a1")]
            + values[("B", "b1", "b1")]
            + values[("B", "a1", "b1")]
        )
        assert exposure.n_incoming_arcs == 3
        assert exposure.nonweighted_exposure == pytest.approx(expected)

    def test_all_module_exposures(self, fig2_graph):
        exposures = all_module_exposures(fig2_graph)
        assert set(exposures) == {"A", "B", "C", "D", "E"}

    def test_ranking_puts_no_exposure_last(self, fig2_graph):
        ranking = rank_by_exposure(fig2_graph)
        tail = {item.module for item in ranking[-2:]}
        assert tail == {"A", "C"}

    def test_ranking_nonweighted_vs_weighted(self, fig2_graph):
        by_sum = rank_by_exposure(fig2_graph, nonweighted=True)
        by_mean = rank_by_exposure(fig2_graph, nonweighted=False)
        assert by_sum[0].module == "E"  # sum 2.3
        assert by_mean[0].module == "D"  # mean 0.70


class TestSignalExposure:
    @pytest.fixture()
    def trees(self, fig2_matrix):
        return list(build_all_backtrack_trees(fig2_matrix).values())

    def test_eq6_unique_arc_sum(self, trees):
        """b1 generates multiple nodes; its pair values count once."""
        values = fig2_permeabilities()
        exposure = signal_exposure(trees, "b1")
        # Nodes for b1: internal nodes (expanded, children = B's pairs
        # producing b1) and the feedback leaves (no children).  Unique
        # arcs: P^B[b1->b1] and P^B[a1->b1].
        assert exposure == pytest.approx(
            values[("B", "b1", "b1")] + values[("B", "a1", "b1")]
        )

    def test_leaf_signal_has_zero_exposure(self, trees):
        assert signal_exposure(trees, "ext_a") == 0.0

    def test_root_signal_exposure(self, trees):
        values = fig2_permeabilities()
        expected = (
            values[("E", "b2", "sys_out")]
            + values[("E", "d1", "sys_out")]
            + values[("E", "ext_e", "sys_out")]
        )
        assert signal_exposure(trees, "sys_out") == pytest.approx(expected)

    def test_all_signal_exposures_defaults_to_tree_signals(self, trees):
        exposures = all_signal_exposures(trees)
        assert "b1" in exposures and "sys_out" in exposures

    def test_all_signal_exposures_explicit_signals(self, trees):
        exposures = all_signal_exposures(trees, signals=["b1", "nonexistent"])
        assert exposures["nonexistent"] == 0.0

    def test_absent_signal_zero(self, trees):
        assert signal_exposure(trees, "ghost") == 0.0


class TestArrestmentExposures:
    """Shape assertions matching the paper's Tables 2 and 3."""

    @pytest.fixture()
    def matrix(self):
        from repro.arrestment import build_arrestment_model

        return PermeabilityMatrix.uniform(build_arrestment_model(), 1.0)

    def test_ob1_input_only_modules(self, matrix):
        """OB1: DIST_S and PRES_S have no error exposure values."""
        graph = PermeabilityGraph(matrix)
        exposures = all_module_exposures(graph)
        assert exposures["DIST_S"].exposure is None
        assert exposures["PRES_S"].exposure is None
        assert exposures["CALC"].has_exposure
        assert exposures["V_REG"].has_exposure
        assert exposures["PRES_A"].has_exposure
        assert exposures["CLOCK"].has_exposure  # slot feedback

    def test_ob1_central_modules_lead(self, matrix):
        """With uniform weights the hubs CALC and V_REG lead Eq. 5."""
        graph = PermeabilityGraph(matrix)
        ranking = rank_by_exposure(graph, nonweighted=True)
        assert ranking[0].module == "CALC"  # 15 incoming arcs
        assert ranking[1].module == "V_REG"  # 6 incoming arcs

    def test_setvalue_signal_exposure(self, matrix):
        """X^SetValue sums the five P^CALC[*->SetValue] values (counted
        once despite SetValue generating one node per tree branch)."""
        tree = build_backtrack_tree(matrix, "TOC2")
        assert signal_exposure([tree], "SetValue") == pytest.approx(5.0)

    def test_i_signal_exposure(self, matrix):
        """X^i sums the five P^CALC[*->i] values."""
        tree = build_backtrack_tree(matrix, "TOC2")
        assert signal_exposure([tree], "i") == pytest.approx(5.0)

    def test_mscnt_exposure_single_pair(self, matrix):
        tree = build_backtrack_tree(matrix, "TOC2")
        assert signal_exposure([tree], "mscnt") == pytest.approx(1.0)
