"""Cross-module cycle topologies: CYCLE tree cuts + lint diagnostics.

The paper's tree constructions only handle *self*-feedback (a module
output wired back to its own input); wider cycles are cut with
``NodeKind.CYCLE`` leaves.  These tests pin that behaviour on a minimal
two-module loop and assert the lint layer promotes the silent cut to
R006/R007 diagnostics.
"""

from __future__ import annotations

from repro.core.backtrack import build_all_backtrack_trees, build_backtrack_tree
from repro.core.permeability import PermeabilityMatrix
from repro.core.trace import build_trace_tree
from repro.core.treenode import NodeKind
from repro.lint import lint_system
from repro.model.builder import SystemBuilder
from repro.model.system import SystemModel


def build_wide_cycle_system() -> SystemModel:
    """M1 and M2 feed each other: ext -> M1 -> s1 -> M2 -> {s2 -> M1, out}."""
    builder = SystemBuilder("wide-cycle")
    builder.add_module("M1", inputs=["ext", "s2"], outputs=["s1"])
    builder.add_module("M2", inputs=["s1"], outputs=["s2", "out"])
    builder.mark_system_input("ext")
    builder.mark_system_output("out")
    return builder.build()  # validates: every signal produced & consumed


def _uniform_matrix(system: SystemModel) -> PermeabilityMatrix:
    return PermeabilityMatrix.uniform(system, 0.5)


class TestCycleTreeCuts:
    def test_backtrack_tree_cuts_with_cycle_leaf(self):
        matrix = _uniform_matrix(build_wide_cycle_system())
        tree = build_backtrack_tree(matrix, "out")
        kinds = {node.kind for node in tree.root.walk()}
        assert NodeKind.CYCLE in kinds
        # The cut happens when s1 would re-expand through M1 via s2,
        # i.e. the looped signal reappears on its own path.
        cycle_leaves = [
            node for node in tree.root.walk() if node.kind is NodeKind.CYCLE
        ]
        assert all(leaf.is_leaf for leaf in cycle_leaves)
        assert {leaf.signal for leaf in cycle_leaves} == {"s1"}

    def test_cycle_leaf_is_not_feedback(self):
        # The cut must be CYCLE (cross-module), not the paper's FEEDBACK
        # double line, because neither M1 nor M2 feeds itself directly.
        matrix = _uniform_matrix(build_wide_cycle_system())
        for tree in build_all_backtrack_trees(matrix).values():
            kinds = {node.kind for node in tree.root.walk()}
            assert NodeKind.FEEDBACK not in kinds

    def test_trace_tree_cuts_the_same_loop(self):
        matrix = _uniform_matrix(build_wide_cycle_system())
        tree = build_trace_tree(matrix, "ext")
        kinds = {node.kind for node in tree.root.walk()}
        assert NodeKind.CYCLE in kinds

    def test_boundary_paths_still_reach_the_output(self):
        # Cutting the loop must not lose the straight-through path
        # ext -> M1 -> s1 -> M2 -> out.
        matrix = _uniform_matrix(build_wide_cycle_system())
        tree = build_backtrack_tree(matrix, "out")
        boundary = [
            node for node in tree.root.walk() if node.kind is NodeKind.BOUNDARY
        ]
        assert {node.signal for node in boundary} == {"ext"}


class TestCycleLint:
    def test_lint_promotes_the_cut_to_diagnostics(self):
        report = lint_system(build_wide_cycle_system())
        cycles = report.by_code("R006")
        assert len(cycles) == 1
        assert "M1" in cycles[0].message and "M2" in cycles[0].message
        assert "CYCLE" in cycles[0].message  # names the silent tree cut
        unmarked = report.by_code("R007")
        assert {d.location.module for d in unmarked} == {"M1", "M2"}
        assert not report.has_errors  # warnings: analysis still runs

    def test_self_feedback_is_not_a_wide_cycle(self):
        builder = SystemBuilder("self-loop")
        builder.add_module("M", inputs=["ext", "fb"], outputs=["fb", "out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        report = lint_system(builder.build())
        assert not report.by_code("R006")
        assert not report.by_code("R007")

    def test_three_module_ring_is_one_component(self):
        builder = SystemBuilder("ring")
        builder.add_module("A", inputs=["ext", "c_out"], outputs=["a_out"])
        builder.add_module("B", inputs=["a_out"], outputs=["b_out"])
        builder.add_module("C", inputs=["b_out"], outputs=["c_out", "out"])
        builder.mark_system_input("ext")
        builder.mark_system_output("out")
        report = lint_system(builder.build())
        assert len(report.by_code("R006")) == 1
        assert {d.location.module for d in report.by_code("R007")} == {
            "A",
            "B",
            "C",
        }
