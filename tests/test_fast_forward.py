"""Reconvergence fast-forward: equivalence proofs and runtime behaviour.

The headline promise of fast-forward is *byte-identity*: a campaign run
with :attr:`CampaignConfig.fast_forward` enabled must produce exactly
the results of one that simulates every IR to the end — full trace
sets, outcome classification, divergence times, final signals and
telemetry.  The property-based tests below assert that promise across
random injection times, bit positions and targets on both the
single-node arrestment system and the two-node configuration; the
remaining tests pin the runtime mechanics (splice correctness,
stripped-checkpoint resume, the armed-trap guard, lifetime fields).
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.twonode import build_twonode_model, build_twonode_run
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip
from repro.injection.golden_run import GoldenRun
from repro.injection.latency import lifetime_statistics, render_lifetime_table
from repro.model.errors import SimulationError
from repro.simulation.runtime import GoldenReference

from tests.conftest import build_toy_model, build_toy_run, toy_factory

DURATION = 120


def _targets(model):
    return tuple(
        (module, signal)
        for module in model.module_names()
        for signal in model.module(module).inputs
    )


ARRESTMENT_TARGETS = _targets(build_arrestment_model())
TWONODE_TARGETS = _targets(build_twonode_model())


def _single_run_campaign(model, factory, target, time_ms, bit, fast_forward):
    """One-IR campaign capturing the injection run's full traces."""
    config = CampaignConfig(
        duration_ms=DURATION,
        injection_times_ms=(time_ms,),
        error_models=(BitFlip(bit),),
        targets=(target,),
        seed=42,
        fast_forward=fast_forward,
        lint=False,
    )
    campaign = InjectionCampaign(model, factory, {"tc": None}, config)
    captured: list = []
    result = campaign.execute(
        inspector=lambda outcome, injected, golden: captured.append(injected)
    )
    (outcome,) = list(result)
    (injected,) = captured
    return outcome, injected


def _assert_equivalent(ff, naive):
    """Fast-forwarded (outcome, run) matches the fully-simulated pair."""
    ff_outcome, ff_run = ff
    naive_outcome, naive_run = naive
    assert ff_run.traces.to_mapping() == naive_run.traces.to_mapping()
    assert ff_run.final_signals == naive_run.final_signals
    assert ff_run.telemetry == naive_run.telemetry
    assert ff_outcome.fired_at_ms == naive_outcome.fired_at_ms
    assert (
        ff_outcome.comparison.first_divergence_ms
        == naive_outcome.comparison.first_divergence_ms
    )
    assert (
        ff_outcome.comparison.diverged_signals()
        == naive_outcome.comparison.diverged_signals()
    )
    # Only the fast-forward path measures lifetimes ...
    assert naive_outcome.reconverged_at_ms is None
    assert naive_outcome.frames_fast_forwarded == 0
    # ... and when it does, the fields must be mutually consistent.
    if ff_outcome.reconverged:
        assert ff_outcome.reconverged_at_ms is not None
        assert 0 <= ff_outcome.reconverged_at_ms < DURATION
        assert (
            ff_outcome.frames_fast_forwarded
            == DURATION - 1 - ff_outcome.reconverged_at_ms
        )
        if ff_outcome.fired:
            assert ff_outcome.reconverged_at_ms >= ff_outcome.fired_at_ms
            assert ff_outcome.error_lifetime_ms == (
                ff_outcome.reconverged_at_ms - ff_outcome.fired_at_ms
            )
        # A spliced run is sample-identical to its Golden Run from the
        # reconvergence instant on — so it cannot carry a divergence
        # after that instant.
        for time in ff_outcome.comparison.first_divergence_ms.values():
            assert time is None or time <= ff_outcome.reconverged_at_ms


class TestEquivalenceProperties:
    """FF-enabled campaigns are byte-identical to fully-simulated ones."""

    @settings(max_examples=12, deadline=None)
    @given(
        target_index=st.integers(0, len(ARRESTMENT_TARGETS) - 1),
        time_ms=st.integers(0, DURATION - 1),
        bit=st.integers(0, 15),
    )
    def test_arrestment(self, target_index, time_ms, bit):
        target = ARRESTMENT_TARGETS[target_index]
        ff = _single_run_campaign(
            build_arrestment_model(), build_arrestment_run, target,
            time_ms, bit, fast_forward=True,
        )
        naive = _single_run_campaign(
            build_arrestment_model(), build_arrestment_run, target,
            time_ms, bit, fast_forward=False,
        )
        _assert_equivalent(ff, naive)

    @settings(max_examples=12, deadline=None)
    @given(
        target_index=st.integers(0, len(TWONODE_TARGETS) - 1),
        time_ms=st.integers(0, DURATION - 1),
        bit=st.integers(0, 15),
    )
    def test_twonode(self, target_index, time_ms, bit):
        target = TWONODE_TARGETS[target_index]
        ff = _single_run_campaign(
            build_twonode_model(), build_twonode_run, target,
            time_ms, bit, fast_forward=True,
        )
        naive = _single_run_campaign(
            build_twonode_model(), build_twonode_run, target,
            time_ms, bit, fast_forward=False,
        )
        _assert_equivalent(ff, naive)


# ---------------------------------------------------------------------------
# Toy-chain campaigns: whole-campaign parity and measured lifetimes
# ---------------------------------------------------------------------------


def toy_campaign(**overrides) -> InjectionCampaign:
    config = dict(
        duration_ms=40,
        injection_times_ms=(4, 11, 23),
        error_models=(BitFlip(15), BitFlip(3)),
        seed=7,
    )
    config.update(overrides)
    return InjectionCampaign(
        build_toy_model(), toy_factory, {"c0": None}, CampaignConfig(**config)
    )


def outcome_records(result):
    return [
        (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
         o.error_model, o.fired_at_ms, o.comparison.first_divergence_ms)
        for o in result
    ]


class TestToyCampaigns:
    def test_campaign_parity_and_reconvergence(self):
        ff = toy_campaign().execute()
        naive = toy_campaign(fast_forward=False).execute()
        assert outcome_records(ff) == outcome_records(naive)
        # The toy chain is stateless: every injected error dies within
        # a frame or two, so every fired IR must reconverge.
        assert ff.n_reconverged() == ff.n_fired()
        assert ff.reconverged_fraction() > 0
        assert ff.frames_fast_forwarded_total() > 0
        assert naive.n_reconverged() == 0
        assert naive.frames_fast_forwarded_total() == 0

    def test_masked_error_has_zero_lifetime(self):
        """A FILT low-byte flip never leaves the corrupted read."""
        result = toy_campaign(
            targets=(("FILT", "src"),), error_models=(BitFlip(3),)
        ).execute()
        for outcome in result:
            assert outcome.fired
            assert outcome.error_lifetime_ms == 0
            assert outcome.reconverged_at_ms == outcome.fired_at_ms

    def test_lifetime_statistics(self):
        result = toy_campaign().execute()
        stats = lifetime_statistics(result)
        assert set(stats) == {("FILT", "src"), ("AMP", "filt")}
        filt = stats[("FILT", "src")]
        assert filt.n_samples == result.n_fired() - stats[("AMP", "filt")].n_samples
        assert filt.n_censored == 0
        assert filt.observed_fraction == 1.0
        assert filt.min_ms >= 0
        assert filt.max_ms >= filt.min_ms
        table = render_lifetime_table(stats)
        assert "FILT: src" in table
        assert "reconvergence" in table

    def test_without_fast_forward_all_censored(self):
        result = toy_campaign(fast_forward=False).execute()
        stats = lifetime_statistics(result)
        for entry in stats.values():
            assert entry.n_samples == 0
            assert entry.observed_fraction == 0.0
        table = render_lifetime_table(stats)
        assert "-" in table


# ---------------------------------------------------------------------------
# Runtime mechanics
# ---------------------------------------------------------------------------


def record_golden(runner, duration_ms, times=()):
    """Golden Run with digests, as the campaign records it."""
    result, checkpoints, digests = runner.run_with_checkpoints(
        duration_ms, times, frame_digests=True
    )
    golden = GoldenRun(
        case_id="tc",
        result=result,
        digests=digests,
        initials=runner.store.initial_values(),
    )
    return golden, checkpoints


class _PassthroughTrap:
    """A read interceptor with no ``fired`` attribute: never 'done'."""

    def on_read(self, module, signal, value, now_ms):
        return value


class TestRuntimeFastForward:
    def test_uninjected_run_reconverges_immediately(self):
        runner = build_toy_run()
        golden, _ = record_golden(runner, 50)
        replay = runner.run(50, golden.reference)
        assert replay.reconverged_at_ms == 0
        assert replay.frames_fast_forwarded == 49
        assert replay.traces.to_mapping() == golden.result.traces.to_mapping()
        assert replay.final_signals == golden.result.final_signals
        assert replay.telemetry == golden.result.telemetry

    def test_reference_without_digests_disables_fast_forward(self):
        runner = build_toy_run()
        result, _ = runner.run_with_checkpoints(50, ())
        golden = GoldenRun(
            case_id="tc", result=result,
            initials=runner.store.initial_values(),
        )
        assert golden.reference is not None
        assert golden.reference.digests is None
        replay = runner.run(50, golden.reference)
        assert replay.reconverged_at_ms is None
        assert replay.frames_fast_forwarded == 0
        assert replay.traces.to_mapping() == result.traces.to_mapping()

    def test_legacy_golden_run_has_no_reference(self):
        runner = build_toy_run()
        golden = GoldenRun(case_id="tc", result=runner.run(10))
        assert golden.reference is None

    def test_armed_hook_blocks_splice(self):
        """An inert hook without ``fired`` keeps fast-forward disarmed."""
        runner = build_toy_run()
        golden, _ = record_golden(runner, 50)
        runner.add_read_interceptor(_PassthroughTrap())
        try:
            replay = runner.run(50, golden.reference)
        finally:
            runner.clear_hooks()
        assert replay.reconverged_at_ms is None
        assert replay.frames_fast_forwarded == 0
        assert replay.traces.to_mapping() == golden.result.traces.to_mapping()

    def test_stripped_checkpoint_requires_golden(self):
        runner = build_toy_run()
        golden, checkpoints = record_golden(runner, 50, times=(20,))
        stripped = checkpoints[20].without_trace_prefix()
        assert stripped.trace_prefix is None
        assert checkpoints[20].trace_prefix is not None  # original intact
        with pytest.raises(SimulationError):
            runner.run_from(stripped, 50)

    def test_stripped_checkpoint_resume_identical(self):
        runner = build_toy_run()
        golden, checkpoints = record_golden(runner, 50, times=(20,))
        stripped = checkpoints[20].without_trace_prefix()
        resumed = runner.run_from(stripped, 50, golden.reference)
        assert resumed.traces.to_mapping() == golden.result.traces.to_mapping()
        assert resumed.final_signals == golden.result.final_signals

    def test_duration_mismatch_rejected(self):
        runner = build_toy_run()
        golden, _ = record_golden(runner, 50)
        with pytest.raises(SimulationError):
            runner.run(60, golden.reference)

    def test_signal_mismatch_rejected(self):
        runner = build_toy_run()
        golden, _ = record_golden(runner, 50)
        other = GoldenReference(
            signals=("ghost",),
            duration_ms=50,
            samples={"ghost": array("q", [0] * 50)},
            digests=golden.digests,
            initials={"ghost": 0},
            final_signals={"ghost": 0},
            telemetry={},
        )
        with pytest.raises(SimulationError):
            runner.run(50, other)

    def test_reference_validates_sample_lengths(self):
        with pytest.raises(SimulationError):
            GoldenReference(
                signals=("a",),
                duration_ms=5,
                samples={"a": array("q", [0, 1])},
                digests=None,
                initials={"a": 0},
                final_signals={"a": 1},
                telemetry={},
            )

    def test_frame_changes_seeded_from_initials(self):
        """Frame 0 compares against the declared initial values."""
        reference = GoldenReference(
            signals=("a", "b"),
            duration_ms=3,
            samples={
                "a": array("q", [0, 0, 5]),  # unchanged at 0 (initial 0)
                "b": array("q", [1, 1, 1]),  # changed at 0 (initial 0)
            },
            digests=None,
            initials={"a": 0, "b": 0},
            final_signals={"a": 5, "b": 1},
            telemetry={},
        )
        assert reference.frame_changes() == {0: ("b",), 2: ("a",)}

    def test_suffix_and_prefix_round_trip(self):
        samples = array("q", range(10))
        reference = GoldenReference(
            signals=("a",),
            duration_ms=10,
            samples={"a": samples},
            digests=None,
            initials={"a": 0},
            final_signals={"a": 9},
            telemetry={},
        )
        prefix = reference.prefix_array("a", 4)
        assert isinstance(prefix, array) and list(prefix) == [0, 1, 2, 3]
        suffix = array("q")
        suffix.frombytes(reference.suffix_bytes("a", 4))
        assert list(prefix) + list(suffix) == list(range(10))
