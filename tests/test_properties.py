"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backtrack import build_all_backtrack_trees, build_backtrack_tree
from repro.core.exposure import all_module_exposures, all_signal_exposures
from repro.core.graph import PermeabilityGraph
from repro.core.paths import paths_of_backtrack_tree, paths_of_trace_tree, rank_paths
from repro.core.permeability import PermeabilityEstimate, PermeabilityMatrix
from repro.core.trace import build_all_trace_trees
from repro.injection.error_models import BitFlip, Offset, RandomReplacement
from repro.model.examples import build_fig2_system
from repro.model.signal import from_signed, to_signed, wrap_unsigned

import random


# ---------------------------------------------------------------------------
# Bit-level helpers
# ---------------------------------------------------------------------------


@given(st.integers(), st.integers(min_value=1, max_value=64))
def test_wrap_is_idempotent(value, width):
    wrapped = wrap_unsigned(value, width)
    assert wrap_unsigned(wrapped, width) == wrapped
    assert 0 <= wrapped < (1 << width)


@given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
def test_signed_roundtrip(value):
    assert to_signed(from_signed(value, 16), 16) == value


@given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=0, max_value=15))
def test_bitflip_involution_and_distance(value, bit):
    rng = random.Random(0)
    model = BitFlip(bit)
    once = model.apply(value, 16, rng)
    assert once != value
    assert model.apply(once, 16, rng) == value
    assert bin(once ^ value).count("1") == 1


@given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=-500, max_value=500).filter(lambda d: d != 0))
def test_offset_stays_in_domain(value, delta):
    corrupted = Offset(delta).apply(value, 16, random.Random(0))
    assert 0 <= corrupted <= 0xFFFF


@given(st.integers(min_value=0, max_value=0xFFFF), st.integers())
def test_random_replacement_always_changes(value, seed):
    corrupted = RandomReplacement().apply(value, 16, random.Random(seed))
    assert corrupted != value
    assert 0 <= corrupted <= 0xFFFF


# ---------------------------------------------------------------------------
# Permeability estimates
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=4000))
def test_counts_estimate_in_unit_interval(n_inj):
    for n_err in (0, n_inj // 2, n_inj):
        estimate = PermeabilityEstimate.from_counts(n_err, n_inj)
        assert 0.0 <= estimate.value <= 1.0
        low, high = estimate.wilson_interval()
        assert 0.0 <= low <= estimate.value <= high <= 1.0


# ---------------------------------------------------------------------------
# Random matrices over the Fig. 2 topology
# ---------------------------------------------------------------------------

_FIG2 = build_fig2_system()
_PAIRS = list(_FIG2.pair_index())

random_matrices = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=len(_PAIRS),
    max_size=len(_PAIRS),
).map(
    lambda values: PermeabilityMatrix.from_dict(
        _FIG2, dict(zip(_PAIRS, values))
    )
)


@settings(max_examples=40, deadline=None)
@given(random_matrices)
def test_eq2_eq3_relationship(matrix):
    """Eq. 2 is Eq. 3 divided by the pair count, for every module."""
    for module in _FIG2.module_names():
        spec = _FIG2.module(module)
        assert math.isclose(
            matrix.relative_permeability(module) * spec.n_pairs,
            matrix.nonweighted_relative_permeability(module),
            abs_tol=1e-12,
        )
        assert 0.0 <= matrix.relative_permeability(module) <= 1.0
        assert (
            0.0
            <= matrix.nonweighted_relative_permeability(module)
            <= spec.n_pairs
        )


@settings(max_examples=40, deadline=None)
@given(random_matrices)
def test_exposure_bounds(matrix):
    """Eq. 4 lies in [0, 1]; Eq. 5 is bounded by the incoming arc count."""
    graph = PermeabilityGraph(matrix)
    for exposure in all_module_exposures(graph).values():
        if exposure.has_exposure:
            assert 0.0 <= exposure.exposure <= 1.0
            assert exposure.nonweighted_exposure <= exposure.n_incoming_arcs + 1e-9
        else:
            assert exposure.nonweighted_exposure == 0.0


@settings(max_examples=40, deadline=None)
@given(random_matrices)
def test_path_weights_are_products_and_bounded(matrix):
    tree = build_backtrack_tree(matrix, "sys_out")
    paths = paths_of_backtrack_tree(tree)
    for path in paths:
        product = math.prod(edge.permeability for edge in path.edges)
        assert math.isclose(path.weight, product, rel_tol=1e-12, abs_tol=1e-12)
        assert 0.0 <= path.weight <= 1.0
    ranked = rank_paths(paths)
    assert [p.weight for p in ranked] == sorted(
        (p.weight for p in ranked), reverse=True
    )


@settings(max_examples=40, deadline=None)
@given(random_matrices)
def test_tree_structure_invariant_under_weights(matrix):
    """Weights never change the tree shape — only the topology does."""
    tree = build_backtrack_tree(matrix, "sys_out")
    assert tree.n_paths() == 7
    assert tree.n_nodes() == 16
    for trace_tree in build_all_trace_trees(matrix).values():
        for node in trace_tree.root.walk():
            assert all(child.signal != node.signal for child in node.children)


@settings(max_examples=40, deadline=None)
@given(random_matrices)
def test_signal_exposure_nonnegative_and_bounded(matrix):
    trees = list(build_all_backtrack_trees(matrix).values())
    exposures = all_signal_exposures(trees, signals=_FIG2.signal_names())
    for signal, value in exposures.items():
        assert value >= 0.0
        # Bounded by the number of distinct pairs of the system.
        assert value <= len(_PAIRS)


@settings(max_examples=40, deadline=None)
@given(random_matrices)
def test_trace_paths_match_tree_leaf_count(matrix):
    for signal in _FIG2.system_inputs:
        from repro.core.trace import build_trace_tree

        tree = build_trace_tree(matrix, signal)
        assert len(paths_of_trace_tree(tree)) == tree.n_paths()


@settings(max_examples=25, deadline=None)
@given(random_matrices, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_adjusted_weight_scaling(matrix, probability):
    paths = paths_of_backtrack_tree(build_backtrack_tree(matrix, "sys_out"))
    for path in paths:
        adjusted = path.adjusted_weight(probability)
        assert math.isclose(adjusted, probability * path.weight, abs_tol=1e-12)
        assert adjusted <= path.weight + 1e-12
