"""Unit tests for injection traps and Golden Run Comparison."""

from __future__ import annotations

import pytest

from repro.injection.error_models import BitFlip, Offset
from repro.injection.golden_run import GoldenRun, compare_to_golden_run
from repro.injection.traps import InputInjectionTrap, StoreInjectionTrap

from tests.conftest import build_toy_model, build_toy_run


class TestInputInjectionTrap:
    def test_fires_once_at_first_matching_read(self):
        trap = InputInjectionTrap("AMP", "filt", 5, BitFlip(15))
        run = build_toy_run()
        run.add_read_interceptor(trap)
        result = run.run(10)
        assert trap.fired
        assert trap.fired_at_ms == 5
        assert trap.injected_value == trap.original_value ^ 0x8000
        # Only millisecond 5 is affected on the output.
        golden = build_toy_run().run(10)
        diffs = [
            t
            for t in range(10)
            if result.traces["out"][t] != golden.traces["out"][t]
        ]
        assert diffs == [5]

    def test_does_not_touch_store(self):
        trap = InputInjectionTrap("AMP", "filt", 2, BitFlip(15))
        run = build_toy_run()
        run.add_read_interceptor(trap)
        result = run.run(6)
        golden = build_toy_run().run(6)
        assert result.traces["filt"].samples == golden.traces["filt"].samples

    def test_module_scoping(self):
        """A trap on FILT's input never perturbs what AMP reads directly."""
        trap = InputInjectionTrap("FILT", "src", 3, BitFlip(0))
        run = build_toy_run()
        run.add_read_interceptor(trap)
        run.run(6)
        assert trap.fired
        assert trap.fired_at_ms == 3

    def test_for_system_validates_input(self):
        model = build_toy_model()
        with pytest.raises(Exception):
            InputInjectionTrap.for_system(model, "AMP", "src", 0, BitFlip(0))

    def test_for_system_takes_width(self):
        model = build_toy_model()
        trap = InputInjectionTrap.for_system(model, "AMP", "filt", 0, BitFlip(0))
        assert trap.width == 16

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            InputInjectionTrap("AMP", "filt", -1, BitFlip(0))

    def test_unfired_when_time_beyond_run(self):
        trap = InputInjectionTrap("AMP", "filt", 100, BitFlip(0))
        run = build_toy_run()
        run.add_read_interceptor(trap)
        run.run(10)
        assert not trap.fired
        assert trap.fired_at_ms is None


class TestStoreInjectionTrap:
    def test_fires_once_and_rewrites_store(self):
        trap = StoreInjectionTrap("src", 4, Offset(100))
        run = build_toy_run()
        run.add_store_mutator(trap)
        result = run.run(8)
        assert trap.fired_at_ms == 4
        golden = build_toy_run().run(8)
        assert result.traces["src"][4] == golden.traces["src"][4] + 100
        # One-shot: later samples revert to the plant-driven values.
        assert result.traces["src"][5] == golden.traces["src"][5]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            StoreInjectionTrap("src", -2, Offset(1))


class TestGoldenRunComparison:
    def test_error_free_comparison(self):
        golden = GoldenRun("case", build_toy_run().run(10))
        injected = build_toy_run().run(10)
        comparison = compare_to_golden_run(golden, injected)
        assert comparison.error_free()
        assert comparison.diverged_signals() == ()

    def test_detects_divergence_with_time(self):
        golden = GoldenRun("case", build_toy_run().run(10))
        run = build_toy_run()
        run.add_read_interceptor(InputInjectionTrap("AMP", "filt", 6, BitFlip(15)))
        comparison = compare_to_golden_run(golden, run.run(10))
        assert comparison.diverged("out")
        assert comparison.divergence_time("out") == 6
        assert not comparison.diverged("filt")
        assert not comparison.diverged("src")

    def test_diverged_signals_ordered_by_time(self):
        golden = GoldenRun("case", build_toy_run().run(10))
        run = build_toy_run()
        run.add_store_mutator(StoreInjectionTrap("src", 2, BitFlip(15)))
        comparison = compare_to_golden_run(golden, run.run(10))
        # The store mutation runs before software dispatch, so all
        # three signals diverge within the same millisecond.
        assert set(comparison.diverged_signals()) == {"src", "filt", "out"}
        assert all(
            comparison.divergence_time(signal) == 2
            for signal in ("src", "filt", "out")
        )

    def test_latency(self):
        golden = GoldenRun("case", build_toy_run().run(10))
        run = build_toy_run()
        run.add_read_interceptor(InputInjectionTrap("AMP", "filt", 6, BitFlip(15)))
        comparison = compare_to_golden_run(golden, run.run(10))
        assert comparison.latency_ms("out", 6) == 0
        assert comparison.latency_ms("filt", 6) is None

    def test_unknown_signal_rejected(self):
        golden = GoldenRun("case", build_toy_run().run(5))
        comparison = compare_to_golden_run(golden, build_toy_run().run(5))
        with pytest.raises(Exception):
            comparison.diverged("ghost")

    def test_case_id_carried(self):
        golden = GoldenRun("case-7", build_toy_run().run(5))
        comparison = compare_to_golden_run(golden, build_toy_run().run(5))
        assert comparison.case_id == "case-7"
        override = compare_to_golden_run(golden, build_toy_run().run(5), case_id="x")
        assert override.case_id == "x"

    def test_golden_run_accessors(self):
        golden = GoldenRun("case", build_toy_run().run(5))
        assert golden.duration_ms == 5
        assert len(golden.signal_trace("out")) == 5
