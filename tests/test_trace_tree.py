"""Unit tests for trace trees (Input Error Tracing, steps B1–B4)."""

from __future__ import annotations

import pytest

from repro.core.permeability import PermeabilityMatrix
from repro.core.trace import build_all_trace_trees, build_trace_tree
from repro.core.treenode import NodeKind
from repro.model.builder import SystemBuilder
from repro.model.errors import MissingPermeabilityError, NotASystemSignalError


class TestFig2TraceTree:
    """Structure of the tree for the example input I^A_1 (Fig. 5)."""

    @pytest.fixture()
    def tree(self, fig2_matrix):
        return build_trace_tree(fig2_matrix, "ext_a")

    def test_root(self, tree):
        assert tree.system_input == "ext_a"
        assert tree.root.signal == "ext_a"
        assert tree.root.kind is NodeKind.ROOT

    def test_first_hop(self, tree, fig2_matrix):
        assert [child.signal for child in tree.root.children] == ["a1"]
        a1 = tree.root.children[0]
        assert a1.permeability == fig2_matrix.get("A", "ext_a", "a1")

    def test_leaves_are_system_outputs(self, tree):
        for leaf in tree.root.leaves():
            assert leaf.kind is NodeKind.BOUNDARY
            assert leaf.signal == "sys_out"

    def test_feedback_followed_once(self, tree):
        """b1 loops into B; it is expanded once (Fig. 12's rule) and no
        node ever re-emits its own signal."""
        feedback_nodes = [
            node for node in tree.root.walk() if node.kind is NodeKind.FEEDBACK
        ]
        assert feedback_nodes
        assert all(node.signal == "b1" for node in feedback_nodes)
        assert all(not node.is_leaf for node in feedback_nodes)
        for node in tree.root.walk():
            assert all(child.signal != node.signal for child in node.children)

    def test_fanout_covers_all_consumers(self, tree):
        """b1 feeds both B (feedback) and D; both expansions appear."""
        b1_nodes = tree.root.find("b1")
        assert b1_nodes
        child_signals = {child.signal for child in b1_nodes[0].children}
        assert child_signals == {"b2", "d1"}

    def test_path_count(self, tree):
        # ext_a -> a1 -> {b1 -> {b2->out, d1->out}, b2 -> out} = 3 paths.
        assert tree.n_paths() == 3

    def test_weights_multiply_along_path(self, tree, fig2_matrix):
        from repro.core.paths import paths_of_trace_tree

        paths = paths_of_trace_tree(tree)
        direct = next(p for p in paths if p.signals == ("ext_a", "a1", "b2", "sys_out"))
        expected = (
            fig2_matrix.get("A", "ext_a", "a1")
            * fig2_matrix.get("B", "a1", "b2")
            * fig2_matrix.get("E", "b2", "sys_out")
        )
        assert direct.weight == pytest.approx(expected)


class TestValidationAndEdgeCases:
    def test_not_a_system_input_rejected(self, fig2_matrix):
        with pytest.raises(NotASystemSignalError):
            build_trace_tree(fig2_matrix, "sys_out")
        with pytest.raises(NotASystemSignalError):
            build_trace_tree(fig2_matrix, "b1")

    def test_incomplete_matrix_rejected(self, fig2_system):
        matrix = PermeabilityMatrix(fig2_system)
        with pytest.raises(MissingPermeabilityError):
            build_trace_tree(matrix, "ext_a")

    def test_all_trees(self, fig2_matrix):
        trees = build_all_trace_trees(fig2_matrix)
        assert set(trees) == {"ext_a", "ext_c", "ext_e"}

    def test_zero_weight_input_still_traced(self, fig2_matrix):
        tree = build_trace_tree(fig2_matrix, "ext_e")
        assert tree.n_paths() == 1
        leaf = next(tree.root.leaves())
        assert leaf.signal == "sys_out"
        assert leaf.permeability == 0.0

    def test_cross_module_cycle_terminates(self):
        builder = SystemBuilder("cycle")
        builder.add_module("P", inputs=["x", "q_out"], outputs=["p_out"])
        builder.add_module("Q", inputs=["p_out"], outputs=["q_out", "sys"])
        builder.mark_system_input("x")
        builder.mark_system_output("sys")
        matrix = PermeabilityMatrix.uniform(builder.build(), 0.9)
        tree = build_trace_tree(matrix, "x")
        assert tree.n_paths() >= 1
        assert any(
            node.kind is NodeKind.CYCLE for node in tree.root.walk()
        ) or tree.n_paths() > 0


class TestArrestmentTraceTrees:
    """Trace trees of the target system (paper Figs. 11 and 12)."""

    @pytest.fixture()
    def matrix(self):
        from repro.arrestment import build_arrestment_model

        return PermeabilityMatrix.uniform(build_arrestment_model(), 1.0)

    def test_adc_tree_is_a_chain(self, matrix):
        """Fig. 11: ADC -> InValue -> OutValue -> TOC2."""
        tree = build_trace_tree(matrix, "ADC")
        assert tree.n_paths() == 1
        signals = [node.signal for node in tree.root.walk()]
        assert signals == ["ADC", "InValue", "OutValue", "TOC2"]

    def test_pacnt_tree_has_no_i_child_of_i(self, matrix):
        """Fig. 12: 'we do not have a child node from i that is i itself'."""
        tree = build_trace_tree(matrix, "PACNT")
        for node in tree.root.find("i"):
            assert all(child.signal != "i" for child in node.children)
            # The feedback is followed once: SetValue continues below i.
            assert {child.signal for child in node.children} == {"SetValue"}

    def test_pacnt_tree_reaches_toc2(self, matrix):
        tree = build_trace_tree(matrix, "PACNT")
        leaves = list(tree.root.leaves())
        assert leaves
        assert all(leaf.signal == "TOC2" for leaf in leaves)
        # pulscnt/slow_speed/stopped each reach TOC2 via SetValue
        # directly and via the i feedback: 3 x 2 = 6 paths.
        assert tree.n_paths() == 6

    def test_all_four_input_trees_build(self, matrix):
        trees = build_all_trace_trees(matrix)
        assert set(trees) == {"PACNT", "TIC1", "TCNT", "ADC"}
        # TIC1 and TCNT trees mirror the PACNT tree (paper: "The trees
        # for inputs TIC1 and TCNT are very similar").
        assert trees["TIC1"].n_paths() == trees["PACNT"].n_paths()
        assert trees["TCNT"].n_paths() == trees["PACNT"].n_paths()
