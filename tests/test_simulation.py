"""Unit tests for the simulation substrate (clock, registers, scheduler)."""

from __future__ import annotations

import pytest

from repro.model.errors import ScheduleError
from repro.simulation.registers import (
    AdcRegister,
    FreeRunningCounter,
    HardwareRegister,
    InputCapture,
    OutputCompare,
    PulseAccumulator,
)
from repro.simulation.scheduler import SlotSchedule
from repro.simulation.simtime import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance_ms() == 1
        assert clock.advance_ms(9) == 10
        assert clock.now_ms == 10

    def test_ticks(self):
        clock = SimClock(ticks_per_ms=2000)
        clock.advance_ms(3)
        assert clock.now_ticks == 6000

    def test_reset(self):
        clock = SimClock()
        clock.advance_ms(5)
        clock.reset()
        assert clock.now_ms == 0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_ms(-1)

    def test_bad_tick_rate_rejected(self):
        with pytest.raises(ValueError):
            SimClock(ticks_per_ms=0)


class TestRegisters:
    def test_base_register_wraps(self):
        reg = HardwareRegister("r")
        reg.write(0x1_0007)
        assert reg.read() == 7

    def test_base_register_reset(self):
        reg = HardwareRegister("r", initial=42)
        reg.write(7)
        reg.reset()
        assert reg.read() == 42

    def test_pulse_accumulator_counts_and_wraps(self):
        pacnt = PulseAccumulator("PACNT")
        pacnt.count(0xFFFE)
        pacnt.count(5)
        assert pacnt.read() == 3

    def test_pulse_accumulator_rejects_negative(self):
        with pytest.raises(ValueError):
            PulseAccumulator("PACNT").count(-1)

    def test_free_running_counter(self):
        tcnt = FreeRunningCounter("TCNT", ticks_per_ms=2000)
        tcnt.advance_ms(3)
        assert tcnt.read() == 6000

    def test_free_running_counter_wraps(self):
        tcnt = FreeRunningCounter("TCNT", ticks_per_ms=2000)
        tcnt.advance_ms(40)  # 80_000 ticks > 65_535
        assert tcnt.read() == 80000 - 65536

    def test_at_offset_ticks(self):
        tcnt = FreeRunningCounter("TCNT")
        tcnt.advance_ms(1)
        assert tcnt.at_offset_ticks(-500) == 1500
        assert tcnt.at_offset_ticks(-3000) == (2000 - 3000) & 0xFFFF

    def test_input_capture(self):
        tcnt = FreeRunningCounter("TCNT", ticks_per_ms=2000)
        tic1 = InputCapture("TIC1", counter=tcnt)
        tcnt.advance_ms(2)
        tic1.capture(ticks_ago=300)
        assert tic1.read() == 3700

    def test_input_capture_holds_between_edges(self):
        tcnt = FreeRunningCounter("TCNT")
        tic1 = InputCapture("TIC1", counter=tcnt)
        tcnt.advance_ms(1)
        tic1.capture()
        held = tic1.read()
        tcnt.advance_ms(5)
        assert tic1.read() == held

    def test_adc_quantisation_and_clipping(self):
        adc = AdcRegister("ADC", 0.0, 100.0)
        adc.convert(50.0)
        assert adc.read() == round(0.5 * 65535)
        adc.convert(-10.0)
        assert adc.read() == 0
        adc.convert(200.0)
        assert adc.read() == 65535

    def test_adc_roundtrip(self):
        adc = AdcRegister("ADC", 0.0, 20e6)
        adc.convert(5e6)
        assert adc.to_physical() == pytest.approx(5e6, rel=1e-3)

    def test_adc_rejects_bad_range(self):
        with pytest.raises(ValueError):
            AdcRegister("ADC", 10.0, 10.0)

    def test_output_compare_fraction(self):
        toc2 = OutputCompare("TOC2")
        toc2.write(0xFFFF)
        assert toc2.command_fraction() == 1.0
        toc2.write(0)
        assert toc2.command_fraction() == 0.0


class TestSlotSchedule:
    def test_assign_and_dispatch(self):
        schedule = SlotSchedule(n_slots=7)
        schedule.assign_every_slot("CLOCK")
        schedule.assign("PRES_S", [1])
        schedule.add_background("CALC")
        assert schedule.modules_for_slot(0) == ("CLOCK",)
        assert schedule.modules_for_slot(1) == ("CLOCK", "PRES_S")
        assert schedule.dispatch_order(1) == ("CLOCK", "PRES_S", "CALC")

    def test_slot_wraps_modulo(self):
        schedule = SlotSchedule(n_slots=7)
        schedule.assign("X", [3])
        assert schedule.modules_for_slot(10) == ("X",)
        assert schedule.modules_for_slot(0xFFFF) == schedule.modules_for_slot(
            0xFFFF % 7
        )

    def test_assign_period(self):
        schedule = SlotSchedule(n_slots=6)
        schedule.assign_period("M", period_ms=3, phase=1)
        assert schedule.modules_for_slot(1) == ("M",)
        assert schedule.modules_for_slot(4) == ("M",)
        assert schedule.modules_for_slot(0) == ()

    def test_assign_period_must_divide(self):
        with pytest.raises(ScheduleError):
            SlotSchedule(n_slots=7).assign_period("M", period_ms=3)

    def test_assign_period_phase_bound(self):
        with pytest.raises(ScheduleError):
            SlotSchedule(n_slots=6).assign_period("M", period_ms=3, phase=3)

    def test_double_assignment_rejected(self):
        schedule = SlotSchedule()
        schedule.assign("M", [0])
        with pytest.raises(ScheduleError):
            schedule.assign("M", [0])

    def test_double_background_rejected(self):
        schedule = SlotSchedule()
        schedule.add_background("CALC")
        with pytest.raises(ScheduleError):
            schedule.add_background("CALC")

    def test_bad_slot_rejected(self):
        with pytest.raises(ScheduleError):
            SlotSchedule(n_slots=7).assign("M", [7])

    def test_zero_slots_rejected(self):
        with pytest.raises(ScheduleError):
            SlotSchedule(n_slots=0)

    def test_all_modules_deduplicated(self):
        schedule = SlotSchedule(n_slots=2)
        schedule.assign_every_slot("A")
        schedule.assign("B", [1])
        schedule.add_background("C")
        assert schedule.all_modules() == ("A", "B", "C")

    def test_describe(self):
        schedule = SlotSchedule(n_slots=2)
        schedule.assign("A", [0])
        text = schedule.describe()
        assert "slot 0: A" in text
        assert "slot 1: (idle)" in text
