"""Unit tests for propagation-path extraction and ranking."""

from __future__ import annotations

import math

import pytest

from repro.core.backtrack import build_backtrack_tree
from repro.core.paths import (
    PathEdge,
    nonzero_paths,
    paths_of_backtrack_tree,
    paths_of_trace_tree,
    rank_paths,
)
from repro.core.trace import build_trace_tree
from repro.core.treenode import NodeKind
from repro.model.examples import fig2_permeabilities


@pytest.fixture()
def backtrack_paths(fig2_matrix):
    return paths_of_backtrack_tree(build_backtrack_tree(fig2_matrix, "sys_out"))


class TestBacktrackPaths:
    def test_path_count_matches_tree(self, fig2_matrix, backtrack_paths):
        tree = build_backtrack_tree(fig2_matrix, "sys_out")
        assert len(backtrack_paths) == tree.n_paths() == 7

    def test_paths_run_source_to_sink(self, backtrack_paths):
        for path in backtrack_paths:
            assert path.sink == "sys_out"
            assert path.signals[0] == path.source
            assert path.signals[-1] == "sys_out"

    def test_weight_is_product_of_edges(self, backtrack_paths):
        for path in backtrack_paths:
            assert path.weight == pytest.approx(
                math.prod(edge.permeability for edge in path.edges)
            )

    def test_example_path_weight(self, backtrack_paths):
        """The paper's example: P = P^A_1,1 * P^B_2,2 * P^E_1,1 for the
        direct ext_a -> a1 -> b2 -> sys_out path."""
        values = fig2_permeabilities()
        direct = next(
            p
            for p in backtrack_paths
            if p.signals == ("ext_a", "a1", "b2", "sys_out")
        )
        expected = (
            values[("A", "ext_a", "a1")]
            * values[("B", "a1", "b2")]
            * values[("E", "b2", "sys_out")]
        )
        assert direct.weight == pytest.approx(expected)

    def test_adjusted_weight(self, backtrack_paths):
        """The paper's P' = Pr(err on input) * P scaling."""
        path = backtrack_paths[0]
        assert path.adjusted_weight(0.5) == pytest.approx(0.5 * path.weight)

    def test_edges_in_propagation_order(self, backtrack_paths):
        direct = next(
            p
            for p in backtrack_paths
            if p.signals == ("ext_a", "a1", "b2", "sys_out")
        )
        assert [edge.module for edge in direct.edges] == ["A", "B", "E"]
        assert direct.edges[0].input_signal == "ext_a"
        assert direct.edges[-1].output_signal == "sys_out"

    def test_terminal_kinds(self, backtrack_paths):
        kinds = {path.source: path.terminal_kind for path in backtrack_paths}
        assert kinds["ext_c"] is NodeKind.BOUNDARY
        assert kinds["b1"] is NodeKind.FEEDBACK
        feedback = [p for p in backtrack_paths if not p.ends_at_boundary]
        assert len(feedback) == 2  # one b1 feedback leaf per branch

    def test_length(self, backtrack_paths):
        for path in backtrack_paths:
            assert path.length == len(path.signals) - 1


class TestTracePaths:
    def test_trace_paths_orientation(self, fig2_matrix):
        paths = paths_of_trace_tree(build_trace_tree(fig2_matrix, "ext_a"))
        for path in paths:
            assert path.source == "ext_a"
            assert path.sink == "sys_out"
            assert path.signals[0] == "ext_a"

    def test_trace_weights(self, fig2_matrix):
        paths = paths_of_trace_tree(build_trace_tree(fig2_matrix, "ext_c"))
        assert len(paths) == 1
        values = fig2_permeabilities()
        expected = (
            values[("C", "ext_c", "c1")]
            * values[("D", "c1", "d1")]
            * values[("E", "d1", "sys_out")]
        )
        assert paths[0].weight == pytest.approx(expected)


class TestRanking:
    def test_rank_descending(self, backtrack_paths):
        ranked = rank_paths(backtrack_paths)
        weights = [path.weight for path in ranked]
        assert weights == sorted(weights, reverse=True)

    def test_rank_tie_break_shorter_first(self):
        edge = PathEdge("M", "a", "b", 0.5)
        short = _make_path(("a", "b"), (edge,), 0.5)
        long = _make_path(("a", "b", "c"), (edge, edge), 0.5)
        ranked = rank_paths([long, short])
        assert ranked[0] is short

    def test_nonzero_filter(self, backtrack_paths):
        nonzero = nonzero_paths(backtrack_paths)
        assert len(nonzero) == len(backtrack_paths) - 1  # ext_e path is 0
        assert all(path.weight > 0 for path in nonzero)

    def test_rank_is_stable_and_deterministic(self, backtrack_paths):
        first = rank_paths(backtrack_paths)
        second = rank_paths(list(reversed(backtrack_paths)))
        assert [p.signals for p in first] == [p.signals for p in second]


class TestRendering:
    def test_factor_expression(self, backtrack_paths):
        path = next(p for p in backtrack_paths if p.length == 3)
        text = path.factor_expression()
        assert text.count("*") == 2
        assert "=" in text

    def test_str_contains_chain(self, backtrack_paths):
        assert "->" in str(backtrack_paths[0])


def _make_path(signals, edges, weight):
    from repro.core.paths import PropagationPath

    return PropagationPath(
        source=signals[0],
        sink=signals[-1],
        signals=tuple(signals),
        edges=tuple(edges),
        weight=weight,
        terminal_kind=NodeKind.BOUNDARY,
    )
