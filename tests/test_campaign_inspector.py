"""Tests for the campaign inspector hook (trace access per injection run)."""

from __future__ import annotations

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import BitFlip

from tests.conftest import build_toy_model, build_toy_run


def make_campaign() -> InjectionCampaign:
    return InjectionCampaign(
        build_toy_model(),
        lambda case: build_toy_run(),
        {"c0": None, "c1": None},
        CampaignConfig(
            duration_ms=20,
            injection_times_ms=(5,),
            error_models=(BitFlip(15), BitFlip(0)),
        ),
    )


class TestInspector:
    def test_called_once_per_injection_run(self):
        campaign = make_campaign()
        calls = []
        campaign.execute(
            inspector=lambda outcome, injected, golden: calls.append(
                (outcome.case_id, outcome.module, outcome.error_model)
            )
        )
        assert len(calls) == campaign.total_runs() == 8

    def test_receives_full_traces(self):
        campaign = make_campaign()
        durations = []

        def inspector(outcome, injected, golden):
            durations.append(injected.duration_ms)
            assert set(injected.traces.signals) == {"src", "filt", "out"}
            assert golden.duration_ms == injected.duration_ms

        campaign.execute(inspector=inspector)
        assert set(durations) == {20}

    def test_outcome_matches_traces(self):
        """The outcome's GRC verdict agrees with a re-comparison of the
        traces handed to the inspector."""
        from repro.injection.golden_run import compare_to_golden_run

        campaign = make_campaign()

        def inspector(outcome, injected, golden):
            fresh = compare_to_golden_run(golden, injected)
            assert fresh.first_divergence_ms == outcome.comparison.first_divergence_ms

        campaign.execute(inspector=inspector)

    def test_golden_run_matches_case(self):
        campaign = make_campaign()
        seen = set()

        def inspector(outcome, injected, golden):
            assert golden.case_id == outcome.case_id
            seen.add(golden.case_id)

        campaign.execute(inspector=inspector)
        assert seen == {"c0", "c1"}

    def test_result_identical_with_and_without_inspector(self):
        with_inspector = make_campaign().execute(inspector=lambda *a: None)
        without = make_campaign().execute()
        assert [o.comparison.first_divergence_ms for o in with_inspector] == [
            o.comparison.first_divergence_ms for o in without
        ]
