"""Unit tests for the table renderers and DOT exporters."""

from __future__ import annotations

import pytest

from repro.core.analysis import PropagationAnalysis
from repro.core.backtrack import build_backtrack_tree
from repro.core.dot import graph_to_dot, system_to_dot, tree_to_dot
from repro.core.graph import PermeabilityGraph
from repro.core.report import format_table
from repro.core.trace import build_trace_tree


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["Col", "Another"], [["a", "bb"], ["ccc", "d"]])
        lines = text.splitlines()
        assert lines[0].startswith("Col")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_title(self):
        text = format_table(["A"], [["1"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_non_string_cells(self):
        text = format_table(["N"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestPaperTables:
    @pytest.fixture()
    def analysis(self, fig2_matrix):
        return PropagationAnalysis(fig2_matrix)

    def test_table1_lists_all_pairs(self, analysis, fig2_system):
        text = analysis.render_table1()
        assert text.count("\n") >= fig2_system.n_pairs()
        assert "P^A_1,1" in text
        assert "ext_a -> a1" in text

    def test_table2_has_all_modules_and_dashes(self, analysis):
        text = analysis.render_table2()
        for module in ("A", "B", "C", "D", "E"):
            assert module in text
        assert "-" in text  # A and C have no exposure values

    def test_table3_sorted_by_exposure(self, analysis):
        text = analysis.render_table3()
        lines = [line for line in text.splitlines()[3:] if "|" in line]
        values = [float(line.split("|")[1]) for line in lines]
        assert values == sorted(values, reverse=True)

    def test_table4_nonzero_only_by_default(self, analysis):
        text = analysis.render_table4()
        assert "0.000000" not in text

    def test_table4_with_zero_paths(self, analysis):
        text = analysis.render_table4(only_nonzero=False)
        assert "0.000000" in text

    def test_summary_contains_everything(self, analysis):
        text = analysis.render_summary()
        assert "Table 1." in text
        assert "Table 2." in text
        assert "Table 3." in text
        assert "Table 4." in text
        assert "Placement recommendations" in text


class TestDot:
    def test_system_dot(self, fig2_system):
        dot = system_to_dot(fig2_system)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"A" -> "B"' in dot
        assert "in:ext_a" in dot
        assert "out:sys_out" in dot

    def test_graph_dot_omits_zero_arcs_by_default(self, fig2_matrix):
        dot = graph_to_dot(PermeabilityGraph(fig2_matrix))
        assert "0.000" not in dot
        full = graph_to_dot(PermeabilityGraph(fig2_matrix), include_zero=True)
        assert "0.000" in full

    def test_graph_dot_self_loop_dashed(self, fig2_matrix):
        dot = graph_to_dot(PermeabilityGraph(fig2_matrix))
        assert "style=dashed" in dot

    def test_backtrack_tree_dot(self, fig2_matrix):
        tree = build_backtrack_tree(fig2_matrix, "sys_out")
        dot = tree_to_dot(tree)
        assert "backtrack-sys_out" in dot
        assert "style=bold" in dot  # feedback double line
        assert dot.count("->") == tree.n_nodes() - 1

    def test_trace_tree_dot(self, fig2_matrix):
        tree = build_trace_tree(fig2_matrix, "ext_a")
        dot = tree_to_dot(tree)
        assert "trace-ext_a" in dot
        assert dot.count("->") == tree.n_nodes() - 1

    def test_dot_quoting(self, fig2_system):
        # Signal names never contain quotes here, but the quoter must
        # escape them if they did.
        from repro.core.dot import _quote

        assert _quote('a"b') == '"a\\"b"'


class TestAnalysisFacade:
    def test_cached_properties_are_stable(self, fig2_matrix):
        analysis = PropagationAnalysis(fig2_matrix)
        assert analysis.graph is analysis.graph
        assert analysis.backtrack_trees is analysis.backtrack_trees
        assert analysis.placement is analysis.placement

    def test_ranked_output_paths(self, fig2_matrix):
        analysis = PropagationAnalysis(fig2_matrix)
        ranked = analysis.ranked_output_paths("sys_out")
        assert len(ranked) == 7
        assert ranked[0].weight >= ranked[-1].weight
        nonzero = analysis.ranked_output_paths("sys_out", only_nonzero=True)
        assert len(nonzero) == 6

    def test_ranked_input_paths(self, fig2_matrix):
        analysis = PropagationAnalysis(fig2_matrix)
        ranked = analysis.ranked_input_paths("ext_a")
        assert ranked and ranked[0].source == "ext_a"

    def test_all_ranked_paths(self, fig2_matrix):
        analysis = PropagationAnalysis(fig2_matrix)
        assert len(analysis.all_ranked_paths()) == 7

    def test_module_measures_match_matrix(self, fig2_matrix):
        analysis = PropagationAnalysis(fig2_matrix)
        assert (
            analysis.module_measures["B"].relative_permeability
            == fig2_matrix.relative_permeability("B")
        )


class TestRenderOptions:
    def test_table3_zero_filter(self, fig2_matrix):
        from repro.core.analysis import PropagationAnalysis
        from repro.core.report import render_table3

        analysis = PropagationAnalysis(fig2_matrix)
        full = render_table3(dict(analysis.signal_exposures))
        filtered = render_table3(
            dict(analysis.signal_exposures), include_zero=False
        )
        assert "ext_a" in full
        assert "ext_a" not in filtered

    def test_table4_truncation(self, fig2_matrix):
        from repro.core.analysis import PropagationAnalysis
        from repro.core.paths import rank_paths
        from repro.core.report import render_table4

        analysis = PropagationAnalysis(fig2_matrix)
        paths = rank_paths(analysis.output_paths("sys_out"))
        text = render_table4(paths, max_paths=2)
        body = [line for line in text.splitlines()[3:] if "|" in line]
        assert len(body) == 2

    def test_table1_counts_column(self, fig2_system):
        from repro.core.permeability import PermeabilityMatrix
        from repro.core.report import render_table1

        matrix = PermeabilityMatrix(fig2_system)
        for key in fig2_system.pair_index():
            matrix.set_counts(*key, n_errors=3, n_injections=160)
        text = render_table1(matrix)
        assert "3/160" in text
