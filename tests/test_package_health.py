"""Package-health checks: imports, __all__ consistency, version."""

from __future__ import annotations

import importlib
import pkgutil

import repro


def test_every_module_imports_and_all_is_consistent():
    for mod_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if mod_info.name.endswith("__main__"):
            continue  # executing the CLI entry point is not an import test
        module = importlib.import_module(mod_info.name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{mod_info.name}.__all__: {name}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"
