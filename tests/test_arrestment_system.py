"""Closed-loop integration tests of the full target system."""

from __future__ import annotations

import pytest

from repro.arrestment.constants import CHECKPOINT_PULSES, RUNWAY_LENGTH_M
from repro.arrestment.system import (
    arrestment_schedule,
    build_arrestment_model,
    build_arrestment_run,
)
from repro.arrestment.testcases import (
    ArrestmentTestCase,
    paper_test_cases,
    reduced_test_cases,
)


class TestTopology:
    def test_paper_inventory(self):
        system = build_arrestment_model()
        assert len(system.modules) == 6
        assert system.n_pairs() == 25
        assert system.system_inputs == ("PACNT", "TIC1", "TCNT", "ADC")
        assert system.system_outputs == ("TOC2",)

    def test_paper_signal_numbering(self):
        """Fig. 8: PACNT is input #1 of DIST_S; SetValue is output #2 of
        CALC; P^CALC_2,1 maps mscnt to i."""
        system = build_arrestment_model()
        assert system.module("DIST_S").input_index("PACNT") == 1
        assert system.module("CALC").output_index("SetValue") == 2
        assert system.module("CALC").input_index("mscnt") == 2
        assert system.module("CALC").output_index("i") == 1

    def test_feedback_modules(self):
        system = build_arrestment_model()
        assert set(system.feedback_modules()) == {"CLOCK", "CALC"}

    def test_schedule_layout(self):
        schedule = arrestment_schedule()
        assert schedule.n_slots == 7
        for slot in range(7):
            modules = schedule.modules_for_slot(slot)
            assert modules[0] == "CLOCK"
            assert "DIST_S" in modules
        assert schedule.background_modules == ("CALC",)
        # One 7 ms module per dedicated slot.
        assert "PRES_S" in schedule.modules_for_slot(1)
        assert "V_REG" in schedule.modules_for_slot(3)
        assert "PRES_A" in schedule.modules_for_slot(5)


class TestWorkloads:
    def test_paper_grid_has_25_cases(self):
        cases = paper_test_cases()
        assert len(cases) == 25
        masses = {case.mass_kg for case in cases.values()}
        velocities = {case.velocity_ms for case in cases.values()}
        assert masses == {8000.0, 11000.0, 14000.0, 17000.0, 20000.0}
        assert velocities == {40.0, 50.0, 60.0, 70.0, 80.0}

    def test_reduced_cases_cover_ranges(self):
        cases = reduced_test_cases(5)
        assert len(cases) == 5
        masses = {case.mass_kg for case in cases.values()}
        assert len(masses) == 5  # the diagonal covers every mass

    def test_reduced_cases_bounds(self):
        assert len(reduced_test_cases(25)) == 25
        with pytest.raises(ValueError):
            reduced_test_cases(0)
        with pytest.raises(ValueError):
            reduced_test_cases(26)

    def test_case_ids_stable(self):
        case = ArrestmentTestCase(14000, 60)
        assert case.case_id == "m14000-v60"
        assert "14000" in str(case)

    def test_invalid_cases_rejected(self):
        with pytest.raises(ValueError):
            ArrestmentTestCase(0, 60)
        with pytest.raises(ValueError):
            ArrestmentTestCase(14000, 0)


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def nominal_run(self):
        return build_arrestment_run(ArrestmentTestCase(14000, 60)).run(12000)

    def test_arrestment_completes(self, nominal_run):
        telemetry = nominal_run.telemetry
        assert telemetry["stop_time_ms"] > 0
        assert telemetry["position_m"] < RUNWAY_LENGTH_M * 1.05

    def test_all_checkpoints_visited(self, nominal_run):
        i_trace = nominal_run.traces["i"].samples
        assert i_trace[-1] == len(CHECKPOINT_PULSES)
        # i increases monotonically through all checkpoints.
        assert all(b >= a for a, b in zip(i_trace, i_trace[1:]))

    def test_pressure_loop_tracks_set_point(self, nominal_run):
        set_values = nominal_run.traces["SetValue"].samples
        in_values = nominal_run.traces["InValue"].samples
        # Mid-arrestment (after the loop settles, before the end game)
        # the measured pressure stays close to the set point.
        window = range(2000, 5000)
        errors = [abs(set_values[t] - in_values[t]) for t in window]
        assert max(errors) < 2000

    def test_terminal_sequence(self, nominal_run):
        slow = nominal_run.traces["slow_speed"].samples
        stopped = nominal_run.traces["stopped"].samples
        first_slow = slow.index(1)
        first_stop = stopped.index(1)
        assert first_slow < first_stop
        # After stop detection CALC releases the pressure.
        set_values = nominal_run.traces["SetValue"].samples
        assert set_values[-1] == 0

    def test_mscnt_counts_milliseconds(self, nominal_run):
        mscnt = nominal_run.traces["mscnt"].samples
        assert mscnt[0] == 1
        assert mscnt[4999] == 5000 & 0xFFFF

    def test_runs_are_deterministic(self):
        case = ArrestmentTestCase(11000, 70)
        first = build_arrestment_run(case).run(3000)
        second = build_arrestment_run(case).run(3000)
        assert first.traces["TOC2"].samples == second.traces["TOC2"].samples

    @pytest.mark.parametrize("mass,velocity", [(8000, 80), (20000, 40)])
    def test_workload_corners_complete(self, mass, velocity):
        result = build_arrestment_run(ArrestmentTestCase(mass, velocity)).run(16000)
        assert result.telemetry["stop_time_ms"] > 0
        assert result.telemetry["position_m"] < RUNWAY_LENGTH_M * 1.1
