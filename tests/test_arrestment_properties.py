"""Property-based tests (hypothesis) for the arrestment modules.

These pin the robustness properties the permeability results rest on:
wrap-safety of the pulse totaliser, single-sample immunity of PRES_S,
clamping of CALC and V_REG outputs, and the persistence of slot-counter
corruption.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.arrestment.calc import CalcModule
from repro.arrestment.clock import ClockModule
from repro.arrestment.dist_s import DistanceSensorModule
from repro.arrestment.pres_a import PressureActuatorModule
from repro.arrestment.pres_s import PressureSensorModule
from repro.arrestment.v_reg import ValveRegulatorModule

words = st.integers(min_value=0, max_value=0xFFFF)


# ---------------------------------------------------------------------------
# CLOCK
# ---------------------------------------------------------------------------


@given(words, st.integers(min_value=1, max_value=64))
def test_clock_slot_always_valid(initial_slot, steps):
    """Whatever garbage the slot counter holds, the next value is a
    valid slot index — the modulo arithmetic the scheduler relies on."""
    clock = ClockModule()
    slot = initial_slot
    for step in range(steps):
        slot = clock.activate({"ms_slot_nbr": slot}, step)["ms_slot_nbr"]
        assert 0 <= slot < 7


@given(words)
def test_clock_corruption_persists_unless_congruent(corrupted):
    """A corrupted slot value re-converges iff it is congruent to the
    true value modulo 7 — the mechanism behind P[slot->slot] = 1."""
    healthy, faulty = ClockModule(), ClockModule()
    a, b = 3, corrupted
    for step in range(20):
        a = healthy.activate({"ms_slot_nbr": a}, step)["ms_slot_nbr"]
        b = faulty.activate({"ms_slot_nbr": b}, step)["ms_slot_nbr"]
    if corrupted % 7 == 3 % 7:
        assert a == b
    else:
        assert a != b


# ---------------------------------------------------------------------------
# DIST_S
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
def test_dist_s_pulscnt_equals_total_pulses(deltas):
    """pulscnt equals the true pulse total regardless of 16-bit PACNT
    wraps (as long as fewer than 2^16 pulses arrive between reads)."""
    dist = DistanceSensorModule()
    pacnt = 0xFFF0  # start near the wrap point on purpose
    dist.activate({"PACNT": pacnt, "TIC1": 0, "TCNT": 0}, 0)
    total = 0
    for step, delta in enumerate(deltas, start=1):
        pacnt = (pacnt + delta) & 0xFFFF
        total += delta
        out = dist.activate(
            {"PACNT": pacnt, "TIC1": (step * 997) & 0xFFFF, "TCNT": (step * 2000) & 0xFFFF},
            step,
        )
    assert out["pulscnt"] == total & 0xFFFF


@given(words, words, words)
def test_dist_s_outputs_always_well_typed(pacnt, tic1, tcnt):
    dist = DistanceSensorModule()
    for step in range(3):
        out = dist.activate({"PACNT": pacnt, "TIC1": tic1, "TCNT": tcnt}, step)
        assert out["slow_speed"] in (0, 1)
        assert out["stopped"] in (0, 1)
        assert 0 <= out["pulscnt"] <= 0xFFFF


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=6, max_value=60))
def test_dist_s_stopped_immune_to_single_flip(bit, when):
    """OB2's property: no single bit flip on any input can assert
    ``stopped`` while the wheel is turning."""
    def run(flip_at: int | None):
        dist = DistanceSensorModule()
        outputs = []
        for step in range(80):
            pacnt = step * 2
            tic1 = (step * 2 * 1000) & 0xFFFF
            tcnt = (step * 2000) & 0xFFFF
            if flip_at is not None and step == flip_at:
                pacnt ^= 1 << bit
            out = dist.activate(
                {"PACNT": pacnt & 0xFFFF, "TIC1": tic1, "TCNT": tcnt}, step
            )
            outputs.append(out["stopped"])
        return outputs

    assert run(when) == run(None) == [0] * 80


# ---------------------------------------------------------------------------
# PRES_S
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=6, max_value=40),
)
def test_pres_s_single_flip_invisible_on_steady_pressure(level, bit, when):
    """At steady pressure, no single bit flip of the ADC sample may
    alter the InValue stream — the paper's P^PRES_S = 0.000."""
    def run(flip_at: int | None):
        pres = PressureSensorModule()
        stream = []
        for step in range(60):
            sample = level
            if flip_at is not None and step == flip_at:
                sample ^= 1 << bit
            stream.append(pres.activate({"ADC": sample}, step)["InValue"])
        return stream

    assert run(when) == run(None)


@given(st.lists(words, min_size=1, max_size=100))
def test_pres_s_output_on_grid(samples):
    pres = PressureSensorModule()
    for step, sample in enumerate(samples):
        out = pres.activate({"ADC": sample}, step)["InValue"]
        assert out % 512 == 0


# ---------------------------------------------------------------------------
# CALC and the actuation chain
# ---------------------------------------------------------------------------


@given(words, words, words, words, words)
def test_calc_outputs_always_in_range(i, mscnt, pulscnt, slow, stopped):
    calc = CalcModule()
    out = calc.activate(
        {
            "i": i,
            "mscnt": mscnt,
            "pulscnt": pulscnt,
            "slow_speed": slow,
            "stopped": stopped,
        },
        0,
    )
    assert 0 <= out["i"] <= 0xFFFF
    if "SetValue" in out:
        assert 0 <= out["SetValue"] <= 0xFFFF


@given(words, words)
def test_v_reg_drive_always_clamped(set_value, in_value):
    vreg = ValveRegulatorModule()
    for _ in range(5):
        out = vreg.activate({"SetValue": set_value, "InValue": in_value}, 0)
        assert 0 <= out["OutValue"] <= 0xFFFF


@given(words)
def test_pres_a_idempotent_quantisation(drive):
    pres_a = PressureActuatorModule()
    once = pres_a.activate({"OutValue": drive}, 0)["TOC2"]
    twice = pres_a.activate({"OutValue": once}, 0)["TOC2"]
    assert once == twice
    assert once <= drive
