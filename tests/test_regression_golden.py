"""Golden-run regression guard.

The whole experimental pipeline is deterministic; these checksums pin
the nominal Golden Run bit-for-bit.  If a change to the plant, the
modules or the runtime alters them, every permeability estimate in
EXPERIMENTS.md changes with it — re-baseline deliberately, never
accidentally: update the constants below *and* regenerate the
benchmark artefacts in the same change.
"""

from __future__ import annotations

import zlib

import pytest

from repro.arrestment import build_arrestment_run
from repro.arrestment.testcases import ArrestmentTestCase
from repro.arrestment.twonode import build_twonode_run

NOMINAL = ArrestmentTestCase(14000, 60)

#: crc32 over ``str(trace.samples)`` of a 6000 ms nominal Golden Run.
EXPECTED_SINGLE_NODE = {
    "TOC2": 1473781555,
    "SetValue": 1331947465,
    "pulscnt": 921091045,
}
EXPECTED_TWONODE_TOC2S = 3676318770


def checksum(samples) -> int:
    # Normalise to a plain list so the checksum is independent of the
    # trace storage type (list then, array('q') now).
    return zlib.crc32(str(list(samples)).encode())


class TestGoldenRunChecksums:
    @pytest.fixture(scope="class")
    def golden(self):
        return build_arrestment_run(NOMINAL).run(6000)

    @pytest.mark.parametrize("signal", sorted(EXPECTED_SINGLE_NODE))
    def test_single_node_traces(self, golden, signal):
        assert checksum(golden.traces[signal].samples) == EXPECTED_SINGLE_NODE[
            signal
        ], (
            f"the {signal} Golden Run changed — re-baseline EXPERIMENTS.md "
            "and the benchmark artefacts along with this constant"
        )

    def test_twonode_slave_trace(self):
        result = build_twonode_run(NOMINAL).run(6000)
        assert checksum(result.traces["TOC2S"].samples) == EXPECTED_TWONODE_TOC2S

    def test_repeatability_within_session(self, golden):
        again = build_arrestment_run(NOMINAL).run(6000)
        assert again.traces["TOC2"].samples == golden.traces["TOC2"].samples
